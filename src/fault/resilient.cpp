#include "fault/resilient.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "fault/faulty_directory.hpp"
#include "staging/link_graph.hpp"
#include "trace/metrics.hpp"
#include "util/error.hpp"

namespace hcs {

void ResilientOptions::validate() const {
  adaptive.validate();
  if (!(timeout_slack >= 1.0) || !std::isfinite(timeout_slack))
    throw InputError("ResilientOptions: timeout_slack must be finite and >= 1");
  if (max_attempts < 1)
    throw InputError("ResilientOptions: max_attempts must be >= 1");
  if (!(backoff_base_s >= 0.0) || !std::isfinite(backoff_base_s))
    throw InputError("ResilientOptions: backoff_base_s must be finite and >= 0");
  if (!(backoff_factor >= 1.0) || !std::isfinite(backoff_factor))
    throw InputError("ResilientOptions: backoff_factor must be finite and >= 1");
  if (!(transient_detect_factor > 0.0) ||
      !(transient_detect_factor <= timeout_slack) ||
      !std::isfinite(transient_detect_factor))
    throw InputError(
        "ResilientOptions: transient_detect_factor must be in (0, timeout_slack]");
  health.validate();
  if (!(unreachable_bandwidth_factor > 0.0) ||
      !(unreachable_bandwidth_factor <= 1.0) ||
      !std::isfinite(unreachable_bandwidth_factor))
    throw InputError(
        "ResilientOptions: unreachable_bandwidth_factor must be in (0, 1]");
  replan.validate();
}

void ResilientOptions::ReplanOptions::validate() const {
  if (trigger_failures < 1)
    throw InputError("ReplanOptions: trigger_failures must be >= 1");
  if (!(backoff_base_s >= 0.0) || !std::isfinite(backoff_base_s))
    throw InputError("ReplanOptions: backoff_base_s must be finite and >= 0");
  if (!(backoff_factor >= 1.0) || !std::isfinite(backoff_factor))
    throw InputError("ReplanOptions: backoff_factor must be finite and >= 1");
}

std::string_view delivery_status_name(DeliveryStatus status) {
  switch (status) {
    case DeliveryStatus::kDirect: return "direct";
    case DeliveryStatus::kRelayed: return "relayed";
    case DeliveryStatus::kUndeliverable: return "undeliverable";
  }
  throw InputError("delivery_status_name: unknown status");
}

std::string_view failure_reason_name(FailureReason reason) {
  switch (reason) {
    case FailureReason::kNone: return "none";
    case FailureReason::kEndpointCrashed: return "endpoint-crashed";
    case FailureReason::kNoRoute: return "no-route";
    case FailureReason::kRetriesExhausted: return "retries-exhausted";
  }
  throw InputError("failure_reason_name: unknown reason");
}

namespace {

/// Events of `schedule` whose pairs are still remaining, as per-sender
/// orders (mirrors run_adaptive's round construction).
SendProgram remaining_program(const Schedule& schedule,
                              const Matrix<unsigned char>& remaining) {
  const std::size_t n = schedule.processor_count();
  std::vector<std::vector<std::size_t>> orders(n);
  std::vector<std::vector<std::size_t>> recv_orders(n);
  for (std::size_t p = 0; p < n; ++p) {
    for (const ScheduledEvent& event : schedule.sender_events(p))
      if (remaining(event.src, event.dst) != 0) orders[p].push_back(event.dst);
    for (const ScheduledEvent& event : schedule.receiver_events(p))
      if (remaining(event.src, event.dst) != 0)
        recv_orders[p].push_back(event.src);
  }
  return SendProgram{std::move(orders), std::move(recv_orders)};
}

/// One round's commit stream: delivered events and give-ups, merged so a
/// round where every attempt failed still advances the checkpoint clock.
struct Candidate {
  ScheduledEvent event;  ///< give-ups span first attempt .. give-up time
  bool delivered = false;
  std::size_t attempts = 1;
  bool permanent = false;
};

/// Store-and-forward relay of one (src, dst) message through healthy
/// intermediates. The route comes from the staging machinery's
/// time-dependent Dijkstra over the currently reachable ordered pairs;
/// hops execute under the executor's port discipline with hop-level
/// retries, and a hop failure triggers a bounded re-route from the
/// intermediate that holds the data.
MessageOutcome relay_message(std::size_t src, std::size_t dst,
                             const DirectoryService& directory,
                             const MessageMatrix& messages,
                             const FaultPlan& plan,
                             const FaultPlanModel& fault_model,
                             HealthMonitor& health,
                             const ResilientOptions& options, double now,
                             std::vector<double>& send_avail,
                             std::vector<double>& recv_avail,
                             std::vector<ScheduledEvent>& events,
                             std::size_t& failed_attempts,
                             EventTrace* trace) {
  const std::size_t n = directory.processor_count();
  const std::uint64_t bytes = messages(src, dst);

  std::size_t holder = src;
  double ready = now;  ///< data available at `holder` from here on
  std::vector<std::size_t> via;
  // Ordered pairs a route must avoid: the failed direct link, plus every
  // hop that fails underway.
  std::vector<unsigned char> banned(n * n, 0);
  banned[src * n + dst] = 1;

  MessageOutcome outcome;
  outcome.src = src;
  outcome.dst = dst;

  for (std::size_t reroute = 0;; ++reroute) {
    const double depart_earliest = std::max(ready, send_avail[holder]);
    LinkGraph graph(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (plan.node_dead(i, depart_earliest)) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j || banned[i * n + j] != 0) continue;
        if (plan.node_dead(j, depart_earliest)) continue;
        if (plan.link_cut(i, j, depart_earliest)) continue;
        if (health.processor_count() > 0 && health.quarantined(i, j)) continue;
        graph.add_link(i, j, directory.query(i, j, depart_earliest));
      }
    }
    const Route route =
        graph.earliest_arrival({holder}, {depart_earliest}, dst, bytes);
    if (!route.reachable()) {
      outcome.status = DeliveryStatus::kUndeliverable;
      outcome.reason = FailureReason::kNoRoute;
      outcome.via = std::move(via);
      outcome.finish_s = depart_earliest;
      if (trace != nullptr)
        trace->record({outcome.finish_s, outcome.finish_s, bytes,
                       static_cast<std::uint32_t>(src),
                       static_cast<std::uint32_t>(dst), 1,
                       TraceEventKind::kGiveUp});
      return outcome;
    }
    std::vector<std::size_t> path{holder};
    for (const Route::Hop& hop : route.hops)
      path.push_back(graph.link(hop.link_index).to);

    bool stranded = false;
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
      const std::size_t i = path[k];
      const std::size_t j = path[k + 1];
      bool hop_done = false;
      // Exponential backoff carried forward across this hop's attempts:
      // delay k is backoff_base_s * backoff_factor^(k-1) with the same
      // left-to-right rounding as recomputing the product each time.
      double retry_delay = options.backoff_base_s;
      for (std::size_t attempt = 1; attempt <= options.max_attempts; ++attempt) {
        const double depart = std::max({ready, send_avail[i], recv_avail[j]});
        const double nominal = directory.query(i, j, depart).transfer_time(bytes);
        const SendVerdict verdict =
            fault_model.judge({i, j, depart, attempt, nominal});
        const auto i32 = static_cast<std::uint32_t>(i);
        const auto j32 = static_cast<std::uint32_t>(j);
        const auto attempt32 = static_cast<std::uint32_t>(attempt);
        if (trace != nullptr)
          trace->record({depart, depart, bytes, i32, j32, attempt32,
                         TraceEventKind::kSendStart});
        if (verdict.delivered) {
          const double finish = depart + nominal;
          if (trace != nullptr)
            trace->record({depart, finish, bytes, i32, j32, attempt32,
                           TraceEventKind::kRelayHop});
          events.push_back({i, j, depart, finish});
          send_avail[i] = std::max(send_avail[i], finish);
          recv_avail[j] = std::max(recv_avail[j], finish);
          health.record_transfer(i, j, nominal, nominal);
          ready = finish;
          hop_done = true;
          break;
        }
        ++failed_attempts;
        const double freed = depart + verdict.elapsed_s;
        if (trace != nullptr)
          trace->record({depart, freed, bytes, i32, j32, attempt32,
                         TraceEventKind::kAttemptFailed});
        send_avail[i] = std::max(send_avail[i], freed);
        recv_avail[j] = std::max(recv_avail[j], freed);
        health.record_failure(i, j);
        if (verdict.permanent) break;
        ready = std::max(ready, freed + retry_delay);
        if (trace != nullptr && attempt < options.max_attempts)
          trace->record({freed + retry_delay, freed + retry_delay, bytes, i32,
                         j32, attempt32, TraceEventKind::kRetryScheduled});
        retry_delay *= options.backoff_factor;
      }
      if (!hop_done) {
        banned[i * n + j] = 1;
        holder = i;
        stranded = true;
        break;
      }
      if (j != dst) via.push_back(j);
      holder = j;
    }
    if (!stranded) {
      outcome.status = DeliveryStatus::kRelayed;
      outcome.via = std::move(via);
      outcome.finish_s = ready;
      return outcome;
    }
    if (reroute >= options.max_reroutes) {
      outcome.status = DeliveryStatus::kUndeliverable;
      outcome.reason = FailureReason::kRetriesExhausted;
      outcome.via = std::move(via);
      outcome.finish_s = std::max(ready, send_avail[holder]);
      if (trace != nullptr)
        trace->record({outcome.finish_s, outcome.finish_s, bytes,
                       static_cast<std::uint32_t>(src),
                       static_cast<std::uint32_t>(dst), 1,
                       TraceEventKind::kGiveUp});
      return outcome;
    }
  }
}

/// Shared implementation; `trace` is null for the untraced entry point.
ResilientResult run_resilient_impl(const Scheduler& scheduler,
                                   const DirectoryService& directory,
                                   const MessageMatrix& messages,
                                   const FaultPlan& plan,
                                   const ResilientOptions& options,
                                   EventTrace* trace) {
  const std::size_t n = directory.processor_count();
  if (messages.rows() != n || !messages.square())
    throw InputError("run_resilient: directory and messages disagree on size");
  options.validate();
  plan.validate(n);

  // Planning sees the plan's hard faults and the evolving health ledger;
  // execution runs against the live directory with the plan as the
  // simulator's send-failure hook.
  HealthMonitor health(n, options.health);
  const FaultyDirectory faulty(directory, plan,
                               options.unreachable_bandwidth_factor);
  const QuarantineDirectory planning(faulty, health);
  const FaultPlanModel fault_model(plan, options.timeout_slack,
                                   options.transient_detect_factor);
  const NetworkSimulator simulator{directory, messages};

  Matrix<unsigned char> remaining(n, n, 0);
  std::size_t remaining_count = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j) {
        remaining(i, j) = 1;
        ++remaining_count;
      }

  std::vector<double> send_avail(n, 0.0);
  std::vector<double> recv_avail(n, 0.0);
  double now = 0.0;

  ResilientResult result;
  result.events.reserve(remaining_count);
  result.outcomes.reserve(remaining_count);
  std::vector<std::pair<std::size_t, std::size_t>> relay_queue;

  // Per-round simulation state, hoisted so the simulator's warm workspace
  // and these buffers are reused across every checkpoint round.
  SimOptions sim_options;
  SimResult executed;
  std::size_t round = 0;

  // Online re-planning state. `deferred` marks pairs that failed, were
  // requeued, and are awaiting their shot on a degraded schedule — the
  // quarantine sweep must not steal them for the relay path in the
  // meantime. `failure_events` accumulates give-ups and quarantine
  // strikes toward the replan trigger.
  const auto* fault_aware = dynamic_cast<const FaultAwareScheduler*>(&scheduler);
  Matrix<unsigned char> deferred(options.replan.enabled ? n : 0,
                                 options.replan.enabled ? n : 0, 0);
  std::size_t failure_events = 0;
  std::size_t replans_used = 0;
  bool replan_round_pending = false;
  double replan_delay = options.replan.backoff_base_s;
  const auto replan_engaged = [&] {
    return options.replan.enabled &&
           replans_used < options.replan.max_replans &&
           failure_events >= options.replan.trigger_failures;
  };

  const auto relay_now = [&](std::size_t src, std::size_t dst) {
    if (plan.node_dead(src, now) || plan.node_dead(dst, now)) {
      if (trace != nullptr)
        trace->record({now, now, messages(src, dst),
                       static_cast<std::uint32_t>(src),
                       static_cast<std::uint32_t>(dst), 1,
                       TraceEventKind::kGiveUp});
      result.outcomes.push_back({src, dst, DeliveryStatus::kUndeliverable,
                                 FailureReason::kEndpointCrashed, {}, now});
      ++result.undelivered_count;
      return;
    }
    MessageOutcome outcome = relay_message(
        src, dst, directory, messages, plan, fault_model, health, options, now,
        send_avail, recv_avail, result.events, result.failed_attempts, trace);
    if (outcome.status == DeliveryStatus::kRelayed)
      ++result.relayed_count;
    else
      ++result.undelivered_count;
    result.completion_time = std::max(result.completion_time, outcome.finish_s);
    result.outcomes.push_back(std::move(outcome));
  };

  while (remaining_count > 0 || !relay_queue.empty()) {
    // Quarantined pairs leave the direct plan for the relay path: the
    // planning view would advertise them near-unreachable anyway, and a
    // relay through healthy links beats retrying a link that keeps lying.
    if (options.relay && health.quarantined_pair_count() > 0) {
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
          if (remaining(i, j) != 0 && health.quarantined(i, j)) {
            // Replan-deferred pairs stay in the direct plan: they are
            // awaiting a degraded schedule, and the strike that
            // quarantined them already counted toward the trigger.
            if (options.replan.enabled && deferred(i, j) != 0) continue;
            ++failure_events;
            if (replan_engaged()) {
              deferred(i, j) = 1;
              replan_round_pending = true;
              continue;
            }
            remaining(i, j) = 0;
            --remaining_count;
            relay_queue.emplace_back(i, j);
          }
    }
    for (const auto& [src, dst] : relay_queue) relay_now(src, dst);
    relay_queue.clear();
    if (remaining_count == 0) break;
    ++round;

    // A round that re-plans freshly requeued traffic consumes replan
    // budget and concedes the configured backoff first, so recovery
    // windows (crash restarts, flap up-phases) have a chance to pass
    // before the retry. Deferred traffic whose events simply landed past
    // a checkpoint cut re-rides later rounds for free.
    if (replan_round_pending) {
      replan_round_pending = false;
      ++replans_used;
      ++result.replan_count;
      now += replan_delay;
      replan_delay *= options.replan.backoff_factor;
      if (trace != nullptr)
        trace->record({now, now, 0, 0, 0,
                       static_cast<std::uint32_t>(replans_used),
                       TraceEventKind::kReplan});
    }

    // Plan the remaining pairs from the fault- and health-aware view
    // (same round construction as run_adaptive). With nothing to overlay
    // the decorators answer exactly like the base directory, so skip them
    // and keep the base's (possibly O(1)) snapshot fast path.
    const bool overlay_active =
        !plan.empty() || health.quarantined_pair_count() > 0;
    const NetworkModel snapshot =
        overlay_active ? planning.snapshot(now) : directory.snapshot(now);
    const CommMatrix comm{snapshot.cost_matrix(messages, remaining)};
    Schedule planned = [&] {
      // Degraded-mode dispatch: a fault-aware scheduler is told which
      // nodes are down and which pairs are unusable so it can restructure
      // (re-elect representatives, split clusters, go flat) instead of
      // merely re-pricing the degraded directory.
      if (options.replan.enabled && fault_aware != nullptr) {
        std::vector<char> node_down(n, 0);
        std::vector<char> pair_blocked(n * n, 0);
        bool any_fault = false;
        for (std::size_t p = 0; p < n; ++p)
          if (plan.node_dead(p, now)) {
            node_down[p] = 1;
            any_fault = true;
          }
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t j = 0; j < n; ++j)
            if (i != j &&
                (health.quarantined(i, j) || plan.link_cut(i, j, now))) {
              pair_blocked[i * n + j] = 1;
              any_fault = true;
            }
        if (any_fault) {
          DegradeInfo degrade;
          Schedule degraded = fault_aware->schedule_degraded(
              comm, node_down, pair_blocked, &degrade);
          result.reelected_count += degrade.reelected.size();
          if (trace != nullptr)
            for (const auto& [old_rep, new_rep] : degrade.reelected)
              trace->record({now, now, 0,
                             static_cast<std::uint32_t>(old_rep),
                             static_cast<std::uint32_t>(new_rep), 1,
                             TraceEventKind::kReelect});
          return degraded;
        }
      }
      const auto* avail_aware =
          dynamic_cast<const AvailabilityAwareScheduler*>(&scheduler);
      if (avail_aware == nullptr) return scheduler.schedule(comm);
      std::vector<double> send_offset(n, 0.0);
      std::vector<double> recv_offset(n, 0.0);
      for (std::size_t p = 0; p < n; ++p) {
        send_offset[p] = std::max(send_avail[p] - now, 0.0);
        recv_offset[p] = std::max(recv_avail[p] - now, 0.0);
      }
      return avail_aware->schedule_with_availability(comm, send_offset,
                                                     recv_offset);
    }();
    const SendProgram program = remaining_program(planned, remaining);

    sim_options.initial_send_avail.assign(n, 0.0);
    sim_options.initial_recv_avail.assign(n, 0.0);
    for (std::size_t p = 0; p < n; ++p) {
      sim_options.initial_send_avail[p] = std::max(send_avail[p], now);
      sim_options.initial_recv_avail[p] = std::max(recv_avail[p], now);
    }
    // An empty plan never fails an attempt, so the hook would only slow
    // the simulator's hot loop down; executing without it is identical.
    sim_options.fault_model = plan.empty() ? nullptr : &fault_model;
    sim_options.max_attempts = options.max_attempts;
    sim_options.backoff_base_s = options.backoff_base_s;
    sim_options.backoff_factor = options.backoff_factor;
    simulator.run_into(program, sim_options, executed);
    result.failed_attempts += executed.failed_attempts;

    // Merge deliveries and give-ups into one commit stream so an
    // all-failed round still advances the checkpoint clock. Rounds where
    // everything delivered (every round of a healthy run) skip the merge
    // and sort the simulator's event array in place, like run_adaptive.
    std::vector<Candidate> merged;
    if (!executed.undelivered.empty()) {
      merged.reserve(executed.events.size() + executed.undelivered.size());
      for (const ScheduledEvent& event : executed.events)
        merged.push_back({event, true, 1, false});
      for (const UndeliveredSend& failed : executed.undelivered)
        merged.push_back(
            {{failed.src, failed.dst, failed.first_attempt_s, failed.gave_up_s},
             false, failed.attempts, failed.permanent});
      std::sort(merged.begin(), merged.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.event.finish_s < b.event.finish_s;
                });
    } else {
      std::sort(executed.events.begin(), executed.events.end(),
                [](const ScheduledEvent& a, const ScheduledEvent& b) {
                  return a.finish_s < b.finish_s;
                });
    }
    const bool all_delivered = executed.undelivered.empty();
    const std::size_t candidate_count =
        all_delivered ? executed.events.size() : merged.size();
    const auto candidate_event = [&](std::size_t k) -> const ScheduledEvent& {
      return all_delivered ? executed.events[k] : merged[k].event;
    };
    double round_completion = std::max(now, executed.completion_time);
    for (const Candidate& candidate : merged)
      round_completion = std::max(round_completion, candidate.event.finish_s);

    std::size_t commit_target = remaining_count;
    switch (options.adaptive.policy) {
      case CheckpointPolicy::kNever: break;
      case CheckpointPolicy::kEveryEvent: commit_target = 1; break;
      case CheckpointPolicy::kHalveRemaining:
        commit_target = (remaining_count + 1) / 2;
        break;
    }

    // Threshold: keep executing the same plan while the committed prefix
    // tracked its estimate. A give-up in the prefix is an unbounded
    // deviation — always reschedule past it.
    if (commit_target < candidate_count &&
        options.adaptive.reschedule_threshold > 0.0) {
      while (commit_target < candidate_count) {
        double worst = 0.0;
        for (std::size_t k = 0; k < commit_target; ++k) {
          if (!all_delivered && !merged[k].delivered) {
            worst = std::numeric_limits<double>::infinity();
            break;
          }
          const ScheduledEvent& event = candidate_event(k);
          const double estimated = comm.time(event.src, event.dst);
          if (estimated <= 0.0) continue;
          worst = std::max(worst,
                           std::abs(event.duration() - estimated) / estimated);
        }
        if (worst > options.adaptive.reschedule_threshold) break;
        commit_target = std::min(candidate_count,
                                 commit_target + (remaining_count + 1) / 2);
      }
    }

    double cut_time = round_completion;
    if (commit_target < candidate_count)
      cut_time = candidate_event(commit_target - 1).finish_s;
    std::size_t committed = 0;
    std::size_t requeued = 0;
    for (std::size_t k = 0; k < candidate_count; ++k) {
      const ScheduledEvent& event = candidate_event(k);
      const bool before_cut = event.finish_s <= cut_time;
      const bool in_flight = event.start_s < cut_time;
      if (!before_cut && !in_flight) continue;
      remaining(event.src, event.dst) = 0;
      send_avail[event.src] = std::max(send_avail[event.src], event.finish_s);
      recv_avail[event.dst] = std::max(recv_avail[event.dst], event.finish_s);
      if (all_delivered || merged[k].delivered) {
        if (trace != nullptr) {
          const auto src32 = static_cast<std::uint32_t>(event.src);
          const auto dst32 = static_cast<std::uint32_t>(event.dst);
          const auto round32 = static_cast<std::uint32_t>(round);
          trace->record({event.start_s, event.start_s,
                         messages(event.src, event.dst), src32, dst32, round32,
                         TraceEventKind::kSendStart});
          trace->record({event.start_s, event.finish_s,
                         messages(event.src, event.dst), src32, dst32, round32,
                         TraceEventKind::kSendEnd});
        }
        result.events.push_back(event);
        result.completion_time =
            std::max(result.completion_time, event.finish_s);
        MessageOutcome outcome{event.src, event.dst, DeliveryStatus::kDirect,
                               FailureReason::kNone, {}, event.finish_s};
        if (options.replan.enabled && deferred(event.src, event.dst) != 0) {
          deferred(event.src, event.dst) = 0;
          outcome.rescued = true;
          ++result.rescued_count;
        }
        result.outcomes.push_back(std::move(outcome));
        health.record_transfer(event.src, event.dst, event.duration(),
                               comm.time(event.src, event.dst));
      } else {
        const Candidate& candidate = merged[k];
        for (std::size_t a = 0; a < candidate.attempts; ++a)
          health.record_failure(event.src, event.dst);
        ++failure_events;
        if (!candidate.permanent && replan_engaged()) {
          // Requeue instead of relaying: the pair goes back into the
          // direct plan and the next round re-schedules it on the
          // degraded view. Its ports stay engaged until the give-up time
          // (already applied above).
          remaining(event.src, event.dst) = 1;
          deferred(event.src, event.dst) = 1;
          replan_round_pending = true;
          ++requeued;
          continue;
        }
        if (options.replan.enabled) deferred(event.src, event.dst) = 0;
        if (candidate.permanent || !options.relay) {
          // The give-up is an instant, not a port-occupying span: the
          // failed attempts' engagements happened inside the (discarded)
          // simulator round, interleaved with other traffic.
          if (trace != nullptr)
            trace->record({event.finish_s, event.finish_s,
                           messages(event.src, event.dst),
                           static_cast<std::uint32_t>(event.src),
                           static_cast<std::uint32_t>(event.dst),
                           static_cast<std::uint32_t>(candidate.attempts),
                           TraceEventKind::kGiveUp});
          result.outcomes.push_back(
              {event.src, event.dst, DeliveryStatus::kUndeliverable,
               candidate.permanent ? FailureReason::kEndpointCrashed
                                   : FailureReason::kRetriesExhausted,
               {}, event.finish_s});
          ++result.undelivered_count;
          result.completion_time =
              std::max(result.completion_time, event.finish_s);
        } else {
          relay_queue.emplace_back(event.src, event.dst);
        }
      }
      ++committed;
    }
    check(committed > 0 || requeued > 0, "run_resilient: no progress");
    remaining_count -= committed;
    now = cut_time;
    if (remaining_count > 0) {
      ++result.reschedule_count;
      if (trace != nullptr) {
        const auto round32 = static_cast<std::uint32_t>(round);
        trace->record({cut_time, cut_time, 0, 0, 0, round32,
                       TraceEventKind::kCheckpoint});
        trace->record({cut_time, cut_time, 0, 0, 0, round32,
                       TraceEventKind::kReschedule});
      }
    }
  }

  check(result.outcomes.size() == (n == 0 ? 0 : n * (n - 1)),
        "run_resilient: outcome accounting is off");
  result.health = std::move(health);
  return result;
}

}  // namespace

ResilientResult run_resilient(const Scheduler& scheduler,
                              const DirectoryService& directory,
                              const MessageMatrix& messages,
                              const FaultPlan& plan,
                              const ResilientOptions& options) {
  return run_resilient_impl(scheduler, directory, messages, plan, options,
                            nullptr);
}

ResilientResult run_resilient_traced(const Scheduler& scheduler,
                                     const DirectoryService& directory,
                                     const MessageMatrix& messages,
                                     const FaultPlan& plan,
                                     const ResilientOptions& options,
                                     EventTrace& trace) {
  return run_resilient_impl(scheduler, directory, messages, plan, options,
                            &trace);
}

void record_metrics(const ResilientResult& result,
                    double fault_free_completion_s,
                    MetricsRegistry& registry) {
  registry.counter("resilient.replan_count").add(result.replan_count);
  registry.counter("resilient.messages_rescued").add(result.rescued_count);
  registry.counter("resilient.reelected_count").add(result.reelected_count);
  registry.counter("resilient.relayed_count").add(result.relayed_count);
  registry.counter("resilient.undelivered_count").add(result.undelivered_count);
  registry.counter("resilient.failed_attempts").add(result.failed_attempts);
  if (fault_free_completion_s > 0.0)
    registry.gauge("resilient.degraded_makespan_ratio")
        .set_max(result.completion_time / fault_free_completion_s);
}

}  // namespace hcs
