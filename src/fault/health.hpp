// Health feedback: observed-vs-advertised tracking and pair quarantine.
//
// Directories advertise performance; execution reveals it. A
// HealthMonitor accumulates per-pair evidence from the resilient
// executor — delivered transfers compared against the estimate they were
// planned with, and outright failures (timeouts, losses). A pair that
// misbehaves `strike_limit` times in a row is quarantined: the
// QuarantineDirectory decorator then advertises it as (near-)unreachable,
// so the matching/greedy schedulers plan around the sick link at the
// next checkpoint, and the resilient executor routes its traffic through
// relays instead of retrying a link that keeps lying.
#pragma once

#include <cstddef>
#include <vector>

#include "netmodel/directory.hpp"
#include "util/error.hpp"

namespace hcs {

/// Quarantine policy knobs.
struct HealthOptions {
  /// Consecutive strikes on a pair before it is quarantined.
  std::size_t strike_limit = 3;
  /// A delivered transfer counts as a strike when it took more than this
  /// factor times its planned estimate (observed-vs-advertised deviation).
  double deviation_factor = 3.0;
  /// Bandwidth multiplier QuarantineDirectory advertises for quarantined
  /// pairs, in (0, 1].
  double quarantine_bandwidth_factor = 1e-6;

  /// Throws InputError on malformed values.
  void validate() const;
};

/// Per-pair health ledger. Quarantine is sticky: once a pair is
/// blacklisted it stays blacklisted for the monitor's lifetime.
class HealthMonitor {
 public:
  /// A degenerate empty monitor (no pairs); usable only after assignment.
  HealthMonitor() = default;

  HealthMonitor(std::size_t processor_count, HealthOptions options = {});

  [[nodiscard]] std::size_t processor_count() const noexcept { return n_; }
  [[nodiscard]] const HealthOptions& options() const noexcept { return options_; }

  /// A transfer of (src, dst) completed in `observed_s` against a planned
  /// estimate of `estimated_s`: a deviation strike when observed exceeds
  /// deviation_factor * estimated, otherwise the pair's strikes reset.
  /// Inline: the resilient executor calls this once per committed event.
  void record_transfer(std::size_t src, std::size_t dst, double observed_s,
                       double estimated_s) {
    if (observed_s > options_.deviation_factor * estimated_s) {
      strike(src, dst);
    } else {
      at(src, dst).consecutive_strikes = 0;
    }
  }

  /// A transmission attempt of (src, dst) timed out or was lost.
  void record_failure(std::size_t src, std::size_t dst) { strike(src, dst); }

  /// Current consecutive strike count of (src, dst).
  [[nodiscard]] std::size_t strikes(std::size_t src, std::size_t dst) const {
    check(src < n_ && dst < n_, "HealthMonitor: pair out of range");
    return pairs_[src * n_ + dst].consecutive_strikes;
  }

  /// True once (src, dst) has accumulated strike_limit consecutive strikes.
  [[nodiscard]] bool quarantined(std::size_t src, std::size_t dst) const {
    check(src < n_ && dst < n_, "HealthMonitor: pair out of range");
    return pairs_[src * n_ + dst].quarantined;
  }

  /// Number of ordered pairs currently quarantined. O(1): the resilient
  /// executor polls this every checkpoint round to skip quarantine
  /// bookkeeping on healthy runs.
  [[nodiscard]] std::size_t quarantined_pair_count() const noexcept {
    return quarantined_count_;
  }

 private:
  struct PairHealth {
    std::size_t consecutive_strikes = 0;
    bool quarantined = false;
  };

  [[nodiscard]] PairHealth& at(std::size_t src, std::size_t dst) {
    check(src < n_ && dst < n_, "HealthMonitor: pair out of range");
    return pairs_[src * n_ + dst];
  }

  void strike(std::size_t src, std::size_t dst) {
    PairHealth& pair = at(src, dst);
    ++pair.consecutive_strikes;
    if (pair.consecutive_strikes >= options_.strike_limit && !pair.quarantined) {
      pair.quarantined = true;
      ++quarantined_count_;
    }
  }

  std::size_t n_ = 0;
  HealthOptions options_;
  std::vector<PairHealth> pairs_;
  std::size_t quarantined_count_ = 0;
};

/// Directory decorator advertising quarantined pairs as near-unreachable,
/// so schedulers plan around them. The monitor is borrowed and may keep
/// evolving between queries — that is the point: each checkpoint's
/// snapshot reflects the latest observed health.
class QuarantineDirectory final : public DirectoryService {
 public:
  QuarantineDirectory(const DirectoryService& base, const HealthMonitor& health);

  [[nodiscard]] std::size_t processor_count() const override;
  [[nodiscard]] LinkParams query(std::size_t src, std::size_t dst,
                                 double now_s) const override;

 private:
  const DirectoryService& base_;
  const HealthMonitor& health_;
};

}  // namespace hcs
