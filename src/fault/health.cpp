#include "fault/health.hpp"

#include <cmath>

#include "util/error.hpp"

namespace hcs {

void HealthOptions::validate() const {
  if (strike_limit == 0)
    throw InputError("HealthOptions: strike_limit must be >= 1");
  if (!(deviation_factor >= 1.0) || !std::isfinite(deviation_factor))
    throw InputError("HealthOptions: deviation_factor must be finite and >= 1");
  if (!(quarantine_bandwidth_factor > 0.0) ||
      !(quarantine_bandwidth_factor <= 1.0) ||
      !std::isfinite(quarantine_bandwidth_factor))
    throw InputError(
        "HealthOptions: quarantine_bandwidth_factor must be in (0, 1]");
}

HealthMonitor::HealthMonitor(std::size_t processor_count, HealthOptions options)
    : n_(processor_count), options_(options), pairs_(processor_count * processor_count) {
  options_.validate();
}

QuarantineDirectory::QuarantineDirectory(const DirectoryService& base,
                                         const HealthMonitor& health)
    : base_(base), health_(health) {
  check(health.processor_count() == 0 ||
            health.processor_count() == base.processor_count(),
        "QuarantineDirectory: monitor size does not match directory");
}

std::size_t QuarantineDirectory::processor_count() const {
  return base_.processor_count();
}

LinkParams QuarantineDirectory::query(std::size_t src, std::size_t dst,
                                      double now_s) const {
  LinkParams params = base_.query(src, dst, now_s);
  if (src != dst && health_.processor_count() > 0 && health_.quarantined(src, dst))
    params.bandwidth_Bps *= health_.options().quarantine_bandwidth_factor;
  return params;
}

}  // namespace hcs
