// Distributed sweep dispatcher.
//
// Shards a sweep's global work-unit index space (experiment/
// sweep_units.hpp, experiment/fault_sweep.hpp) into contiguous blocks
// and dispatches them across worker backends: in-process workers
// (`local:N`), hcsd daemons on UNIX sockets (`unix:PATH`), and hcsd
// daemons across the network (`tcp:HOST:PORT`). The returned result is
// byte-identical to the single-process sweep at any worker count, shard
// size, or arrival order — shards land in disjoint slots of one global
// value vector and the merge is the same serial fold the local path
// uses (assemble_experiment_result / fault_row_from_values).
//
// Failure handling: a shard that fails on one endpoint (connect error,
// timeout, malformed reply, peer kError) is requeued and re-dispatched
// to any healthy endpoint; the failing endpoint retires after
// `max_failures` consecutive failures. Because shard results are pure
// functions of the shard spec, a duplicated shard (one endpoint timed
// out, another recomputed) merges identically. The driver throws only
// when every endpoint has retired with shards still incomplete.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "experiment/experiment.hpp"
#include "experiment/fault_sweep.hpp"
#include "util/worker_endpoint.hpp"

namespace hcs::service {

/// Remote worker backend: one hcsd daemon behind an endpoint spec
/// ("unix:/path.sock" or "tcp:host:port"). Connects lazily on the first
/// shard and reconnects after any failure, so a daemon that restarts
/// mid-sweep is picked back up. Not thread-safe — the dispatcher gives
/// each endpoint its own thread.
class SocketSweepEndpoint final : public WorkerEndpoint {
 public:
  /// `endpoint` is a ServiceClient endpoint spec; `timeout_s` bounds
  /// each shard round trip (0 = block forever).
  explicit SocketSweepEndpoint(std::string endpoint, double timeout_s = 0.0);
  ~SocketSweepEndpoint() override;

  [[nodiscard]] std::string name() const override { return endpoint_; }
  [[nodiscard]] std::vector<std::uint8_t> run_shard(
      std::span<const std::uint8_t> request) override;

 private:
  struct Impl;
  std::string endpoint_;
  double timeout_s_;
  std::unique_ptr<Impl> impl_;
};

/// Expands worker specs into endpoints: `local:N` becomes N in-process
/// workers, `unix:`/`tcp:` become socket endpoints with `timeout_s`
/// armed. Connection errors surface later, per shard, not here.
[[nodiscard]] std::vector<std::unique_ptr<WorkerEndpoint>>
make_worker_endpoints(const std::vector<WorkerSpec>& specs,
                      double timeout_s = 0.0);

struct DistributedSweepOptions {
  /// Worker backends (moved in; one dispatcher thread each). Must be
  /// non-empty.
  std::vector<std::unique_ptr<WorkerEndpoint>> endpoints;
  /// Units per shard; 0 = auto (about four shards per endpoint, so a
  /// slow worker can shed load to fast ones).
  std::size_t shard_units = 0;
  /// Consecutive failures before an endpoint retires.
  std::size_t max_failures = 3;
};

/// Per-endpoint dispatch accounting.
struct DistributedWorkerReport {
  std::string name;
  std::size_t shards = 0;    ///< shards completed (incl. duplicates)
  std::size_t units = 0;     ///< units inside those shards
  std::size_t failures = 0;  ///< shard attempts that threw
  bool healthy = true;       ///< false once retired
};

struct DistributedReport {
  std::vector<DistributedWorkerReport> workers;
  std::size_t shard_count = 0;
  std::size_t redispatches = 0;  ///< failed attempts that were requeued
};

/// Distributed figure sweep: identical result to run_experiment(config)
/// (the config's `threads` and `metrics` apply only to the local path
/// and are not shipped). Throws InputError when the sweep cannot
/// complete on the given endpoints.
[[nodiscard]] ExperimentResult run_distributed_sweep(
    const ExperimentConfig& config, DistributedSweepOptions& options,
    DistributedReport* report = nullptr);

/// Distributed fault sweep: the driver computes the fault-free baseline
/// locally (it fixes every row's fault horizon) and ships it with each
/// shard; rows merge in crash order. Identical result to
/// run_fault_sweep(config).
[[nodiscard]] FaultSweepResult run_distributed_fault_sweep(
    const FaultSweepConfig& config, DistributedSweepOptions& options,
    DistributedReport* report = nullptr);

}  // namespace hcs::service
