// Replay load generator for hcsd: drives a running daemon with a
// deterministic request trace over N concurrent connections and reports
// throughput and client-observed latency percentiles (exact, from the
// full sample — not the histogram-resolution quantiles of the admin
// scrape).
//
// The trace's knobs pick the caching regime under test:
//  - distinct_workloads = 1, time_step_s = 0   -> pure warm-cache regime
//  - distinct_workloads = requests             -> pure cold-solve regime
//  - time_step_s > 0 against a drifting daemon -> drift regime: keys age
//    out as the directory walks past the quantization tolerance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/scheduler.hpp"
#include "workload/scenario.hpp"

namespace hcs::service {

struct ReplayConfig {
  std::string socket_path;
  /// Total schedule requests across all connections.
  std::size_t requests = 1000;
  /// Concurrent client connections (one thread each).
  std::size_t connections = 4;
  /// Processors per request; must match the daemon's directory.
  std::size_t processors = 64;
  /// Message-size workload family for the generated matrices.
  Scenario scenario = Scenario::kMixedMessages;
  SchedulerKind kind = SchedulerKind::kMaxMatching;
  bool hierarchical = false;
  std::uint64_t seed = 1;
  /// Number of distinct message matrices the trace cycles through.
  /// Request i uses matrix i % distinct_workloads, so this bounds the
  /// reachable key set (clamped to [1, requests]).
  std::size_t distinct_workloads = 8;
  /// Directory time advance per request: request i queries now_s =
  /// i * time_step_s. Zero freezes time (no drift).
  double time_step_s = 0.0;
};

/// Aggregate outcome of one replay. Latencies are client-observed round
/// trips in microseconds, exact percentiles over every completed request.
struct ReplayStats {
  std::size_t completed = 0;  ///< requests answered with a schedule
  std::size_t cache_hits = 0;
  std::size_t coalesced = 0;
  std::size_t busy = 0;    ///< shed by queue backpressure (kBusy)
  std::size_t errors = 0;  ///< any other failure
  double wall_s = 0.0;
  double qps = 0.0;  ///< completed / wall_s
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
};

/// Runs the trace against a live daemon. Requests are assigned to
/// connections round-robin (connection c sends requests c, c+C, ...), so
/// the interleaving — and thus the coalescing opportunity — is the same
/// for every run of a given config. Throws InputError when the daemon is
/// unreachable; per-request failures are counted, not thrown.
[[nodiscard]] ReplayStats run_replay(const ReplayConfig& config);

}  // namespace hcs::service
