// Replay load generator for hcsd: drives a running daemon with a
// deterministic request trace over N concurrent connections and reports
// throughput and client-observed latency percentiles (exact, from the
// full sample — not the histogram-resolution quantiles of the admin
// scrape).
//
// The trace's knobs pick the caching regime under test:
//  - distinct_workloads = 1, time_step_s = 0   -> pure warm-cache regime
//  - distinct_workloads = requests             -> pure cold-solve regime
//  - time_step_s > 0 against a drifting daemon -> drift regime: keys age
//    out as the directory walks past the quantization tolerance.
//
// The arrival process picks the load regime. kClosed is the classic
// closed loop: each connection fires its next request the moment the
// previous response lands, so offered load adapts to service rate and
// queueing never builds. kPoisson and kBurst are open-loop: every
// request has an intended arrival time drawn before the clock starts
// (exponential inter-arrivals at offered_qps, or back-to-back groups of
// burst_size at the same average rate), and latency is measured from
// the intended arrival — a request that waited behind a slow peer is
// charged that wait (no coordinated omission).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/scheduler.hpp"
#include "workload/scenario.hpp"

namespace hcs::service {

/// How request start times are generated.
enum class Arrival {
  kClosed,   ///< send on response: offered load = service rate
  kPoisson,  ///< open loop, exponential inter-arrivals at offered_qps
  kBurst,    ///< open loop, bursts of burst_size at offered_qps average
};

struct ReplayConfig {
  std::string socket_path;
  /// Total schedule requests across all connections.
  std::size_t requests = 1000;
  /// Concurrent client connections (one thread each).
  std::size_t connections = 4;
  /// Processors per request; must match the daemon's directory.
  std::size_t processors = 64;
  /// Message-size workload family for the generated matrices.
  Scenario scenario = Scenario::kMixedMessages;
  SchedulerKind kind = SchedulerKind::kMaxMatching;
  bool hierarchical = false;
  std::uint64_t seed = 1;
  /// Number of distinct message matrices the trace cycles through.
  /// Request i uses matrix i % distinct_workloads, so this bounds the
  /// reachable key set (clamped to [1, requests]).
  std::size_t distinct_workloads = 8;
  /// Directory time advance per request: request i queries now_s =
  /// i * time_step_s. Zero freezes time (no drift).
  double time_step_s = 0.0;
  /// Arrival process; open-loop modes need offered_qps > 0.
  Arrival arrival = Arrival::kClosed;
  /// Target offered load (requests/s) for kPoisson and kBurst.
  double offered_qps = 0.0;
  /// Requests per burst for kBurst.
  std::size_t burst_size = 8;
};

/// Aggregate outcome of one replay. Latencies are client-observed round
/// trips in microseconds, exact percentiles over every completed request
/// (measured from the intended arrival time in open-loop modes).
struct ReplayStats {
  std::size_t completed = 0;  ///< requests answered with a schedule
  std::size_t cache_hits = 0;
  std::size_t coalesced = 0;
  std::size_t busy = 0;    ///< shed by queue backpressure (kBusy)
  std::size_t errors = 0;  ///< any other failure
  double wall_s = 0.0;
  double qps = 0.0;          ///< completed / wall_s
  double offered_qps = 0.0;  ///< intended load (0 for closed loop)
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double max_us = 0.0;
};

/// Runs the trace against a live daemon. Requests are assigned to
/// connections round-robin (connection c sends requests c, c+C, ...), so
/// the interleaving — and thus the coalescing opportunity — is the same
/// for every run of a given config. Throws InputError when the daemon is
/// unreachable; per-request failures are counted, not thrown.
[[nodiscard]] ReplayStats run_replay(const ReplayConfig& config);

}  // namespace hcs::service
