#include "service/wire.hpp"

#include <cmath>

#include "util/bytes.hpp"

namespace hcs::service {
namespace {

// The protocol is little-endian on the wire; the memcpy-on-LE encode and
// decode primitives live in util/bytes.hpp (shared with the sweep shard
// codec). Instantiated here with WireError so malformed frames surface as
// protocol errors.
using Writer = ByteWriter<WireError>;
using Cursor = ByteCursor<WireError>;

SchedulerKind checked_kind(std::uint8_t raw) {
  switch (static_cast<SchedulerKind>(raw)) {
    case SchedulerKind::kBaseline:
    case SchedulerKind::kBaselineBarrier:
    case SchedulerKind::kMaxMatching:
    case SchedulerKind::kMinMatching:
    case SchedulerKind::kGreedy:
    case SchedulerKind::kOpenShop:
    case SchedulerKind::kRandom:
      return static_cast<SchedulerKind>(raw);
  }
  throw WireError("wire: unknown scheduler kind " + std::to_string(raw));
}

std::uint32_t checked_processors(std::uint32_t p, const char* what) {
  if (p < 2 || p > kMaxProcessors)
    throw WireError(std::string(what) + ": processors out of range [2, " +
                    std::to_string(kMaxProcessors) + "]");
  return p;
}

}  // namespace

std::vector<std::uint8_t> encode_schedule_request(
    const ScheduleRequest& request) {
  if (!request.messages.square())
    throw WireError("encode_schedule_request: message matrix must be square");
  const std::size_t p =
      checked_processors(static_cast<std::uint32_t>(request.messages.rows()),
                         "encode_schedule_request");
  std::vector<std::uint8_t> out;
  Writer writer(out, 16 + 8 * p * p);
  writer.u8(kWireVersion);
  writer.u8(static_cast<std::uint8_t>(request.kind));
  writer.u8(request.hierarchical ? 1 : 0);
  writer.u8(0);  // reserved
  writer.u32(static_cast<std::uint32_t>(p));
  writer.f64(request.now_s);
  writer.u64_block(request.messages.data());
  writer.finish();
  return out;
}

ScheduleRequest decode_schedule_request(std::span<const std::uint8_t> payload) {
  Cursor cursor(payload);
  const std::uint8_t version = cursor.u8();
  if (version != kWireVersion)
    throw WireError("decode_schedule_request: unsupported version " +
                    std::to_string(version));
  ScheduleRequest request;
  request.kind = checked_kind(cursor.u8());
  const std::uint8_t flags = cursor.u8();
  if ((flags & ~std::uint8_t{1}) != 0)
    throw WireError("decode_schedule_request: unknown flag bits");
  request.hierarchical = (flags & 1) != 0;
  (void)cursor.u8();  // reserved
  const std::uint32_t p =
      checked_processors(cursor.u32(), "decode_schedule_request");
  request.now_s = cursor.f64();
  if (!(request.now_s >= 0.0) || !std::isfinite(request.now_s))
    throw WireError("decode_schedule_request: now_s must be finite and >= 0");
  if (cursor.remaining() != 8 * static_cast<std::size_t>(p) * p)
    throw WireError("decode_schedule_request: message matrix size mismatch");
  request.messages = MessageMatrix(p, p);
  cursor.u64_block(request.messages.mutable_data());
  cursor.expect_exhausted("decode_schedule_request");
  return request;
}

std::vector<std::uint8_t> encode_schedule_response(
    const ScheduleResponse& response) {
  const std::size_t p = checked_processors(
      static_cast<std::uint32_t>(response.processors), "encode_schedule_response");
  std::vector<std::uint8_t> out;
  Writer writer(out, 24 + 24 * response.events.size());
  writer.u8(kWireVersion);
  writer.u8(static_cast<std::uint8_t>((response.cache_hit ? 1 : 0) |
                                      (response.coalesced ? 2 : 0)));
  writer.u16(0);  // reserved
  writer.u32(static_cast<std::uint32_t>(p));
  writer.f64(response.completion_s);
  writer.u32(static_cast<std::uint32_t>(response.events.size()));
  writer.u32(0);  // reserved
  for (const ScheduledEvent& event : response.events) {
    writer.u32(static_cast<std::uint32_t>(event.src));
    writer.u32(static_cast<std::uint32_t>(event.dst));
    writer.f64(event.start_s);
    writer.f64(event.finish_s);
  }
  writer.finish();
  return out;
}

ScheduleResponse decode_schedule_response(
    std::span<const std::uint8_t> payload) {
  Cursor cursor(payload);
  const std::uint8_t version = cursor.u8();
  if (version != kWireVersion)
    throw WireError("decode_schedule_response: unsupported version " +
                    std::to_string(version));
  ScheduleResponse response;
  const std::uint8_t flags = cursor.u8();
  if ((flags & ~std::uint8_t{3}) != 0)
    throw WireError("decode_schedule_response: unknown flag bits");
  response.cache_hit = (flags & 1) != 0;
  response.coalesced = (flags & 2) != 0;
  (void)cursor.u16();  // reserved
  const std::uint32_t p =
      checked_processors(cursor.u32(), "decode_schedule_response");
  response.processors = p;
  response.completion_s = cursor.f64();
  const std::uint32_t event_count = cursor.u32();
  (void)cursor.u32();  // reserved
  if (cursor.remaining() != 24 * static_cast<std::size_t>(event_count))
    throw WireError("decode_schedule_response: event block size mismatch");
  response.events.reserve(event_count);
  for (std::uint32_t k = 0; k < event_count; ++k) {
    ScheduledEvent event;
    event.src = cursor.u32();
    event.dst = cursor.u32();
    if (event.src >= p || event.dst >= p)
      throw WireError("decode_schedule_response: event endpoint out of range");
    event.start_s = cursor.f64();
    event.finish_s = cursor.f64();
    response.events.push_back(event);
  }
  cursor.expect_exhausted("decode_schedule_response");
  return response;
}

std::vector<std::uint8_t> encode_error(const ErrorFrame& error) {
  std::vector<std::uint8_t> out;
  out.reserve(2 + error.message.size());
  Writer writer(out, 2);
  writer.u16(static_cast<std::uint16_t>(error.code));
  writer.finish();
  out.insert(out.end(), error.message.begin(), error.message.end());
  return out;
}

ErrorFrame decode_error(std::span<const std::uint8_t> payload) {
  Cursor cursor(payload);
  ErrorFrame error;
  const std::uint16_t code = cursor.u16();
  switch (static_cast<ErrorCode>(code)) {
    case ErrorCode::kBusy:
    case ErrorCode::kBadRequest:
    case ErrorCode::kInternal:
      error.code = static_cast<ErrorCode>(code);
      break;
    default:
      throw WireError("decode_error: unknown error code " +
                      std::to_string(code));
  }
  error.message = cursor.rest_as_string();
  return error;
}

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxPayloadBytes)
    throw WireError("append_frame: payload exceeds kMaxPayloadBytes");
  Writer writer(out, kFrameHeaderBytes);
  writer.u32(static_cast<std::uint32_t>(payload.size()));
  writer.u8(static_cast<std::uint8_t>(type));
  writer.finish();
  out.insert(out.end(), payload.begin(), payload.end());
}

void FrameReader::feed(std::span<const std::uint8_t> bytes) {
  // Compact once the consumed prefix dominates, so long-lived connections
  // do not grow the buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameReader::next() {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return std::nullopt;
  const std::uint8_t* head = buffer_.data() + consumed_;
  std::uint32_t length = 0;
  for (int k = 0; k < 4; ++k)
    length |= static_cast<std::uint32_t>(head[k]) << (8 * k);
  if (length > kMaxPayloadBytes)
    throw WireError("FrameReader: frame length " + std::to_string(length) +
                    " exceeds limit");
  const std::uint8_t raw_type = head[4];
  if (raw_type < static_cast<std::uint8_t>(FrameType::kScheduleRequest) ||
      raw_type > static_cast<std::uint8_t>(FrameType::kSweepResult))
    throw WireError("FrameReader: unknown frame type " +
                    std::to_string(raw_type));
  if (available < kFrameHeaderBytes + length) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.payload.assign(head + kFrameHeaderBytes,
                       head + kFrameHeaderBytes + length);
  consumed_ += kFrameHeaderBytes + length;
  return frame;
}

}  // namespace hcs::service
