// Sharded schedule cache keyed on quantized cost-matrix signatures.
//
// The insight behind serving schedules at high QPS: topology signatures
// change far slower than request rates (Estefanel & Mounié's logical-
// cluster observation, PAPERS.md). A schedule is a pure function of the
// cost matrix and the algorithm, and cost matrices drawn seconds apart
// from a drifting directory differ by measurement-jitter-sized factors —
// so schedules are highly cacheable if the key absorbs that jitter.
//
// The key reuses cluster detection's quantization
// (netmodel/cluster_detect.hpp): every cost-matrix entry is reduced to
// its quantized log-level at `quantum` resolution. Two requests whose
// per-pair costs all agree within roughly a factor exp(quantum/2) share a
// key and hence a cached schedule; the moment directory drift pushes any
// pair past the quantization tolerance the signature changes and the
// stale entry simply stops being reachable — drift invalidation without a
// watcher thread. Evicted (or never re-requested) entries age out of
// their shard by LRU.
//
// Concurrency: keys hash onto independently locked shards, so unrelated
// requests never contend. Identical concurrent requests coalesce
// (single-flight): the first becomes the leader and solves; followers
// block on the leader's flight and share its result — under a request
// burst for one hot key the solver runs once, not N times.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/schedule.hpp"
#include "core/scheduler.hpp"
#include "util/matrix.hpp"

namespace hcs::service {

/// Deterministic 64-bit content hash (no pointer or per-process salt):
/// four interleaved FNV-style lanes over 8-byte chunks, so hashing a
/// P = 64 signature costs microseconds, not tens of them. Stable across
/// runs — shard placement and request-memo probes are reproducible.
[[nodiscard]] std::uint64_t hash_bytes64(
    std::span<const std::uint8_t> bytes) noexcept;

/// Cache key: algorithm + processor count + the quantized log-level of
/// every cost-matrix entry. Equal keys mean "same algorithm, costs within
/// quantization tolerance pair-wise".
struct ScheduleKey {
  std::uint8_t kind = 0;
  std::uint8_t hierarchical = 0;
  std::uint32_t processors = 0;
  /// hash_bytes64 over the fields above + levels, computed once at build
  /// time (make_schedule_key). Declared before levels so the defaulted
  /// operator== rejects unequal keys on the digest without touching the
  /// P^2-sized vector.
  std::uint64_t digest = 0;
  std::vector<std::int32_t> levels;  ///< row-major, diagonal included

  [[nodiscard]] bool operator==(const ScheduleKey&) const = default;
};

/// Builds the key for one request: quantizes cost(i, j) for every ordered
/// pair at `quantum` log-resolution (diagonal entries are zero and map to
/// the clamp level — constant, so they never split keys).
[[nodiscard]] ScheduleKey make_schedule_key(SchedulerKind kind,
                                            bool hierarchical,
                                            const Matrix<double>& cost,
                                            double quantum);

/// Returns the key's precomputed digest — hashing is paid once when the
/// key is built, not on every shard pick and map probe.
struct ScheduleKeyHash {
  [[nodiscard]] std::size_t operator()(const ScheduleKey& key) const noexcept {
    return static_cast<std::size_t>(key.digest);
  }
};

/// Sharded LRU cache of solved schedules with single-flight coalescing.
/// All public methods are thread-safe.
class ScheduleCache {
 public:
  struct Options {
    std::size_t shards = 8;     ///< clamped to at least 1
    std::size_t capacity = 256; ///< total entries across shards (>= shards)
  };

  /// Monotonic counters; `entries` is the current resident count.
  struct Stats {
    std::uint64_t hits = 0;       ///< served from the cache, no wait
    std::uint64_t misses = 0;     ///< caller became the solving leader
    std::uint64_t coalesced = 0;  ///< waited on another request's solve
    std::uint64_t evictions = 0;  ///< LRU entries displaced by inserts
    std::uint64_t invalidations = 0;  ///< entries dropped by invalidate_all
    std::uint64_t entries = 0;
  };

  /// One in-flight solve; leaders carry it from acquire() to publish() /
  /// abort(), followers block on it.
  class Flight;

  /// Optional pre-serialized payload stored next to a schedule. Opaque
  /// to the cache; the server stashes the canonical wire encoding here so
  /// hits skip re-serializing the event list.
  using EncodedPayload = std::shared_ptr<const std::vector<std::uint8_t>>;

  /// Outcome of acquire(). Exactly one of three shapes:
  ///  - hit:     schedule set, hit == true — serve immediately;
  ///  - leader:  leader == true, flight set — solve, then publish/abort;
  ///  - coalesced: schedule set (or error non-empty), coalesced == true.
  struct Lookup {
    std::shared_ptr<const Schedule> schedule;
    EncodedPayload encoded;  ///< whatever publish() stored, if anything
    std::shared_ptr<Flight> flight;
    std::string error;  ///< set when a coalesced leader aborted
    bool hit = false;
    bool leader = false;
    bool coalesced = false;
  };

  explicit ScheduleCache(Options options);
  ~ScheduleCache();

  ScheduleCache(const ScheduleCache&) = delete;
  ScheduleCache& operator=(const ScheduleCache&) = delete;

  /// Looks the key up; see Lookup. Blocks only in the coalesced case,
  /// and only until the leader publishes or aborts.
  [[nodiscard]] Lookup acquire(const ScheduleKey& key);

  /// Leader path: inserts the solved schedule (evicting LRU past
  /// capacity), wakes followers. `flight` must come from this key's
  /// acquire(). `encoded` optionally rides along (see EncodedPayload).
  void publish(const ScheduleKey& key, const std::shared_ptr<Flight>& flight,
               std::shared_ptr<const Schedule> schedule,
               EncodedPayload encoded = nullptr);

  /// Leader path on failure: wakes followers with `error`; nothing is
  /// cached, so the next request retries the solve.
  void abort(const ScheduleKey& key, const std::shared_ptr<Flight>& flight,
             std::string error);

  /// Drops every resident entry (explicit epoch invalidation — e.g. the
  /// operator swapped the fabric description). In-flight solves are
  /// unaffected; they publish into the new epoch.
  void invalidate_all();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  struct Shard;

  [[nodiscard]] Shard& shard_for(const ScheduleKey& key);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t per_shard_capacity_ = 1;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
};

}  // namespace hcs::service
