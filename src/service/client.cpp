#include "service/client.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

namespace hcs::service {
namespace {

int connect_unix(const std::string& socket_path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(address.sun_path))
    throw InputError("ServiceClient: bad socket path: " + socket_path);
  std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw InputError("ServiceClient: socket() failed: " +
                     std::string(std::strerror(errno)));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd);
    throw InputError("ServiceClient: connect(" + socket_path +
                     ") failed: " + std::string(std::strerror(saved)));
  }
  return fd;
}

int connect_tcp(const std::string& host_port) {
  const std::size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == host_port.size())
    throw InputError("ServiceClient: tcp endpoint needs host:port, got '" +
                     host_port + "'");
  const std::string host = host_port.substr(0, colon);
  const std::string port = host_port.substr(colon + 1);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &results);
  if (rc != 0)
    throw InputError("ServiceClient: resolve(" + host_port +
                     ") failed: " + std::string(::gai_strerror(rc)));

  int fd = -1;
  std::string last_error = "no addresses";
  for (addrinfo* entry = results; entry != nullptr; entry = entry->ai_next) {
    fd = ::socket(entry->ai_family, entry->ai_socktype, entry->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    if (::connect(fd, entry->ai_addr, entry->ai_addrlen) == 0) break;
    last_error = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0)
    throw InputError("ServiceClient: connect(tcp:" + host_port +
                     ") failed: " + last_error);
  // Request/response round trips are latency-bound; never batch them
  // behind Nagle.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void arm_timeout(int fd, double timeout_s) {
  if (!(timeout_s > 0.0)) return;
  timeval timeout{};
  timeout.tv_sec = static_cast<time_t>(timeout_s);
  timeout.tv_usec = static_cast<suseconds_t>(
      (timeout_s - std::floor(timeout_s)) * 1e6);
  if (timeout.tv_sec == 0 && timeout.tv_usec == 0) timeout.tv_usec = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
}

}  // namespace

ServiceClient::ServiceClient(const std::string& endpoint, double timeout_s) {
  if (endpoint.rfind("tcp:", 0) == 0)
    fd_ = connect_tcp(endpoint.substr(4));
  else if (endpoint.rfind("unix:", 0) == 0)
    fd_ = connect_unix(endpoint.substr(5));
  else
    fd_ = connect_unix(endpoint);
  arm_timeout(fd_, timeout_s);
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), reader_(std::move(other.reader_)) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
  }
  return *this;
}

void ServiceClient::send_frame(FrameType type,
                               std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kFrameHeaderBytes + payload.size());
  append_frame(bytes, type, payload);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw InputError("ServiceClient: send failed: " +
                       std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
}

Frame ServiceClient::read_frame() {
  std::array<std::uint8_t, 64 * 1024> chunk;
  while (true) {
    if (auto frame = reader_.next()) return std::move(*frame);
    const ssize_t n = ::recv(fd_, chunk.data(), chunk.size(), 0);
    if (n == 0)
      throw InputError("ServiceClient: server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw InputError("ServiceClient: recv failed: " +
                       std::string(std::strerror(errno)));
    }
    reader_.feed({chunk.data(), static_cast<std::size_t>(n)});
  }
}

Frame ServiceClient::round_trip(FrameType type,
                                std::span<const std::uint8_t> payload) {
  send_frame(type, payload);
  Frame frame = read_frame();
  if (frame.type == FrameType::kError) {
    const ErrorFrame error = decode_error(frame.payload);
    throw ServiceError(error.code, error.message);
  }
  return frame;
}

ScheduleResponse ServiceClient::schedule(const ScheduleRequest& request) {
  const auto payload = encode_schedule_request(request);
  Frame frame = round_trip(FrameType::kScheduleRequest, payload);
  if (frame.type != FrameType::kScheduleResponse)
    throw WireError("ServiceClient: expected kScheduleResponse, got type " +
                    std::to_string(static_cast<int>(frame.type)));
  return decode_schedule_response(frame.payload);
}

std::vector<std::uint8_t> ServiceClient::sweep_shard(
    std::span<const std::uint8_t> request) {
  Frame frame = round_trip(FrameType::kSweepRequest, request);
  if (frame.type != FrameType::kSweepResult)
    throw WireError("ServiceClient: expected kSweepResult, got type " +
                    std::to_string(static_cast<int>(frame.type)));
  return std::move(frame.payload);
}

std::string ServiceClient::scrape_metrics(bool text) {
  const std::uint8_t format = text ? 1 : 0;
  Frame frame = round_trip(FrameType::kMetricsRequest, {&format, 1});
  if (frame.type != FrameType::kMetricsResponse)
    throw WireError("ServiceClient: expected kMetricsResponse, got type " +
                    std::to_string(static_cast<int>(frame.type)));
  return std::string(reinterpret_cast<const char*>(frame.payload.data()),
                     frame.payload.size());
}

void ServiceClient::shutdown_server() {
  Frame frame = round_trip(FrameType::kShutdown, {});
  if (frame.type != FrameType::kShutdown)
    throw WireError("ServiceClient: expected kShutdown ack, got type " +
                    std::to_string(static_cast<int>(frame.type)));
}

}  // namespace hcs::service
