#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

namespace hcs::service {

ServiceClient::ServiceClient(const std::string& socket_path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(address.sun_path))
    throw InputError("ServiceClient: bad socket path: " + socket_path);
  std::memcpy(address.sun_path, socket_path.c_str(), socket_path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw InputError("ServiceClient: socket() failed: " +
                     std::string(std::strerror(errno)));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw InputError("ServiceClient: connect(" + socket_path +
                     ") failed: " + std::string(std::strerror(saved)));
  }
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), reader_(std::move(other.reader_)) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
  }
  return *this;
}

void ServiceClient::send_frame(FrameType type,
                               std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kFrameHeaderBytes + payload.size());
  append_frame(bytes, type, payload);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw InputError("ServiceClient: send failed: " +
                       std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
}

Frame ServiceClient::read_frame() {
  std::array<std::uint8_t, 64 * 1024> chunk;
  while (true) {
    if (auto frame = reader_.next()) return std::move(*frame);
    const ssize_t n = ::recv(fd_, chunk.data(), chunk.size(), 0);
    if (n == 0)
      throw InputError("ServiceClient: server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      throw InputError("ServiceClient: recv failed: " +
                       std::string(std::strerror(errno)));
    }
    reader_.feed({chunk.data(), static_cast<std::size_t>(n)});
  }
}

Frame ServiceClient::round_trip(FrameType type,
                                std::span<const std::uint8_t> payload) {
  send_frame(type, payload);
  Frame frame = read_frame();
  if (frame.type == FrameType::kError) {
    const ErrorFrame error = decode_error(frame.payload);
    throw ServiceError(error.code, error.message);
  }
  return frame;
}

ScheduleResponse ServiceClient::schedule(const ScheduleRequest& request) {
  const auto payload = encode_schedule_request(request);
  Frame frame = round_trip(FrameType::kScheduleRequest, payload);
  if (frame.type != FrameType::kScheduleResponse)
    throw WireError("ServiceClient: expected kScheduleResponse, got type " +
                    std::to_string(static_cast<int>(frame.type)));
  return decode_schedule_response(frame.payload);
}

std::string ServiceClient::scrape_metrics(bool text) {
  const std::uint8_t format = text ? 1 : 0;
  Frame frame = round_trip(FrameType::kMetricsRequest, {&format, 1});
  if (frame.type != FrameType::kMetricsResponse)
    throw WireError("ServiceClient: expected kMetricsResponse, got type " +
                    std::to_string(static_cast<int>(frame.type)));
  return std::string(reinterpret_cast<const char*>(frame.payload.data()),
                     frame.payload.size());
}

void ServiceClient::shutdown_server() {
  Frame frame = round_trip(FrameType::kShutdown, {});
  if (frame.type != FrameType::kShutdown)
    throw WireError("ServiceClient: expected kShutdown ack, got type " +
                    std::to_string(static_cast<int>(frame.type)));
}

}  // namespace hcs::service
