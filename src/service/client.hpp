// Blocking client for the hcsd wire protocol.
//
// One ServiceClient wraps one connected stream socket — UNIX-domain or
// TCP, selected by the endpoint spec ("unix:/path.sock", "tcp:host:port",
// or a bare filesystem path for compatibility). Calls are synchronous
// request/response pairs; the client is NOT thread-safe — concurrent
// load generators (service/replay.hpp) open one client per connection
// instead of sharing.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "service/wire.hpp"

namespace hcs::service {

/// Thrown when the server answers a request with a kError frame. The
/// code distinguishes backpressure (kBusy — retry later) from caller
/// bugs (kBadRequest) and server-side failures (kInternal).
class ServiceError : public InputError {
 public:
  ServiceError(ErrorCode code, const std::string& message)
      : InputError(message), code_(code) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

class ServiceClient {
 public:
  /// Connects to the daemon at `endpoint`: "unix:PATH", "tcp:HOST:PORT",
  /// or a bare path (treated as unix:PATH). Throws InputError on
  /// failure. `timeout_s > 0` arms SO_RCVTIMEO/SO_SNDTIMEO so a wedged
  /// peer surfaces as an error instead of a hang; 0 blocks forever.
  explicit ServiceClient(const std::string& endpoint, double timeout_s = 0.0);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;
  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;

  /// One round trip: sends the request, blocks for the response. Throws
  /// ServiceError on a kError reply (code kBusy = shed by backpressure),
  /// WireError on protocol violations, InputError on socket failure.
  [[nodiscard]] ScheduleResponse schedule(const ScheduleRequest& request);

  /// One sweep-shard round trip: ships an opaque shard request blob
  /// (encoded by experiment/sweep_shard.hpp) as kSweepRequest and
  /// returns the raw kSweepResult payload. Same error contract as
  /// schedule().
  [[nodiscard]] std::vector<std::uint8_t> sweep_shard(
      std::span<const std::uint8_t> request);

  /// Fetches the admin metrics scrape (JSON when `text` is false).
  [[nodiscard]] std::string scrape_metrics(bool text = false);

  /// Asks the daemon to shut down; returns once it acknowledges.
  void shutdown_server();

 private:
  [[nodiscard]] Frame round_trip(FrameType type,
                                 std::span<const std::uint8_t> payload);
  void send_frame(FrameType type, std::span<const std::uint8_t> payload);
  [[nodiscard]] Frame read_frame();

  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace hcs::service
