// hcsd core: a multi-threaded schedule-serving daemon.
//
// Threading model (DESIGN.md §service has the diagram):
//
//   acceptor ──► one reader thread per connection ──► bounded request
//   queue ──► N worker threads ──► response written straight to the
//   connection (per-connection write mutex keeps frames whole)
//
// The acceptor listens on a UNIX-domain socket, a TCP socket, or both —
// same framing, same queue, same drain semantics either way. Readers
// only parse frames off the socket; all decode and scheduling work
// happens on the worker pool, so the compute concurrency is capped
// at `workers` regardless of connection count. When the queue is full the
// reader answers kError/kBusy immediately instead of enqueueing —
// backpressure the client sees synchronously, never an unbounded buffer.
// Workers serve two request families: schedule solves (kScheduleRequest,
// cached) and sweep shards (kSweepRequest — opaque blocks of a
// distributed experiment sweep, executed by experiment/sweep_shard.hpp).
// Admin traffic (metrics scrape, shutdown) bypasses the queue: it must
// stay answerable exactly when the queue is the thing you want to look
// at.
//
// Each worker owns warm scheduler instances — the PR 1/5 workspace
// refactors mean a MatchingScheduler/GreedyScheduler/... instance reuses
// its LapSolver/SchedulerWorkspace across requests, so the steady state
// allocates nothing in the solve hot path. Solved schedules land in the
// shared ScheduleCache (quantized cost signatures, single-flight,
// drift-invalidated — see schedule_cache.hpp); identical request bursts
// solve once.
//
// Observability: per-worker MetricsRegistry slots in a MetricsHub,
// merged with cache and queue statistics on every scrape. The scrape is
// served over the same wire protocol (kMetricsRequest, JSON or text).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "netmodel/directory.hpp"
#include "service/schedule_cache.hpp"
#include "service/wire.hpp"
#include "trace/metrics_hub.hpp"

namespace hcs::service {

/// Bounded MPMC queue with non-blocking producers (backpressure) and
/// blocking consumers. Thread-safe; close() wakes every blocked pop.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// False when the queue is full or closed — the producer's cue to shed
  /// load instead of buffering it.
  bool try_push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks for the next item; nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Daemon configuration.
struct ServerOptions {
  /// Filesystem path of the UNIX-domain listening socket. An existing
  /// socket file at the path is replaced. May be empty when a TCP
  /// listener is configured; at least one listener is required.
  std::string socket_path;
  /// TCP listening port: -1 disables the TCP listener, 0 binds an
  /// ephemeral port (read it back via tcp_listen_port()). Both listeners
  /// speak the identical framing and share the queue, workers, and drain
  /// semantics.
  int tcp_port = -1;
  /// Address the TCP listener binds. Loopback by default: exposing the
  /// daemon beyond the host is an explicit decision (hcsd --tcp-bind).
  std::string tcp_bind = "127.0.0.1";
  /// Work requests (schedule + sweep) a single connection may submit
  /// before the server answers kBusy and hangs up; 0 = unlimited. A
  /// fairness valve: one greedy client cannot monopolize the daemon
  /// forever, and sweep drivers reconnect transparently.
  std::size_t max_requests_per_connection = 0;
  /// Worker threads (0 = one per allowed CPU).
  std::size_t workers = 0;
  /// Request-queue depth shared by all connections; producers beyond it
  /// receive kBusy.
  std::size_t queue_capacity = 1024;
  /// Schedule-cache shape.
  ScheduleCache::Options cache;
  /// Log-quantization of cost-matrix signatures (the drift tolerance:
  /// entries survive directory drift up to ~a factor exp(quantum/2) per
  /// pair). Matches ClusterOptions::quantum semantics.
  double quantum = 0.25;
  /// Seed handed to schedulers (consumed only by kRandom).
  std::uint64_t seed = 1;
};

/// The daemon. Construct with a directory service (borrowed; must
/// outlive the server and answer queries from any thread — Static,
/// Drifting, and Trace directories all qualify), start(), then wait()
/// for a client-initiated shutdown or call stop().
class ScheduleServer {
 public:
  ScheduleServer(const DirectoryService& directory, ServerOptions options);
  ~ScheduleServer();

  ScheduleServer(const ScheduleServer&) = delete;
  ScheduleServer& operator=(const ScheduleServer&) = delete;

  /// Binds the socket and spawns acceptor + workers. Throws InputError on
  /// bind/listen failure. Idempotence is not supported: start once.
  void start();

  /// Blocks until a kShutdown frame arrives or stop() is called.
  void wait();

  /// Stops accepting, drains readers and workers, closes connections.
  /// Idempotent; also run by the destructor.
  void stop();

  /// Graceful drain (hcsd's SIGTERM path). Immediately stops accepting —
  /// the listen socket closes and its path is unlinked, so new connects
  /// fail fast — and answers further schedule requests on existing
  /// connections with kBusy ("draining"), while the workers finish every
  /// request already queued and deliver those responses. Once the backlog
  /// is empty it performs a full stop(). Blocks until stopped; idempotent
  /// (a second call, or a call after stop(), just stops).
  void drain();

  /// The admin scrape: per-worker metrics merged with cache and server
  /// counters (same registry the kMetricsRequest endpoint serializes).
  [[nodiscard]] MetricsRegistry scrape() const;

  [[nodiscard]] const ScheduleCache& cache() const noexcept { return cache_; }
  [[nodiscard]] std::size_t worker_count() const noexcept {
    return workers_.size();
  }
  /// The bound TCP port (the ephemeral one when tcp_port was 0); 0 when
  /// no TCP listener is configured. Valid after start().
  [[nodiscard]] std::uint16_t tcp_listen_port() const noexcept {
    return tcp_listen_port_;
  }

 private:
  struct Connection;
  struct Job {
    std::shared_ptr<Connection> connection;
    FrameType type = FrameType::kScheduleRequest;
    std::vector<std::uint8_t> payload;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& connection);
  void worker_loop(std::size_t worker);
  /// Memoized directory view: time-invariant directories snapshot once
  /// ever; time-varying ones reuse the last snapshot while requests keep
  /// asking for the same now_s (replay traces and request bursts do),
  /// regenerating only when the instant changes. Thread-safe.
  [[nodiscard]] std::shared_ptr<const NetworkModel> snapshot_at(double now_s);
  void handle_admin(const std::shared_ptr<Connection>& connection,
                    const Frame& frame);
  void write_frame_to(Connection& connection, FrameType type,
                      std::span<const std::uint8_t> payload);
  /// Schedule-response fast path: frames a cached canonical encoding and
  /// patches the per-response flags byte (cache_hit/coalesced) in place.
  void write_response_frame(Connection& connection,
                            std::span<const std::uint8_t> payload,
                            std::uint8_t flags);
  void request_stop();

  const DirectoryService& directory_;
  ServerOptions options_;
  ScheduleCache cache_;
  MetricsHub metrics_;

  int listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  std::uint16_t tcp_listen_port_ = 0;
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  BoundedQueue<Job> queue_;

  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Connection>> connections_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> accepting_{true};
  std::atomic<bool> draining_{false};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;

  std::mutex snapshot_mutex_;
  double snapshot_now_ = -1.0;
  std::shared_ptr<const NetworkModel> snapshot_;

  std::atomic<std::uint64_t> busy_rejections_{0};
  std::atomic<std::uint64_t> drain_rejections_{0};
  std::atomic<std::uint64_t> request_limit_closes_{0};
  std::atomic<std::uint64_t> accepted_connections_{0};
  std::atomic<std::uint64_t> snapshot_reuses_{0};
  std::atomic<std::uint64_t> snapshot_builds_{0};
  std::chrono::steady_clock::time_point started_at_;
};

}  // namespace hcs::service
