#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/comm_matrix.hpp"
#include "core/hierarchical_scheduler.hpp"
#include "experiment/sweep_shard.hpp"
#include "netmodel/cluster_detect.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace hcs::service {
namespace {

/// Poll interval for the accept and read loops: every blocking wait wakes
/// at least this often to check the stop flag, so shutdown needs no
/// cross-thread wakeup trickery and completes within one tick.
constexpr int kPollMillis = 100;

/// Writes the whole buffer, restarting on EINTR and short writes.
/// Returns false on any hard error (peer gone, timeout).
bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

/// One accepted client. The reader thread lives here; writes from any
/// worker serialize on write_mutex so frames are never interleaved.
struct ScheduleServer::Connection {
  int fd = -1;
  std::mutex write_mutex;
  std::atomic<bool> open{true};
  std::thread reader;
  /// Work requests seen so far (reader-thread only; the per-connection
  /// request limit compares against this).
  std::uint64_t work_requests = 0;
};

ScheduleServer::ScheduleServer(const DirectoryService& directory,
                               ServerOptions options)
    : directory_(directory),
      options_(std::move(options)),
      cache_(options_.cache),
      metrics_(options_.workers == 0 ? ThreadPool::allowed_cpu_count()
                                     : options_.workers),
      queue_(options_.queue_capacity) {
  if (options_.socket_path.empty() && options_.tcp_port < 0)
    throw InputError(
        "ScheduleServer: need at least one listener (socket_path or "
        "tcp_port)");
  if (options_.tcp_port > 65535)
    throw InputError("ScheduleServer: tcp_port must be in [0, 65535]");
  if (!(options_.quantum > 0.0))
    throw InputError("ScheduleServer: quantum must be positive");
}

ScheduleServer::~ScheduleServer() { stop(); }

void ScheduleServer::start() {
  if (!options_.socket_path.empty()) {
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (options_.socket_path.size() >= sizeof(address.sun_path))
      throw InputError("ScheduleServer: socket path too long: " +
                       options_.socket_path);
    std::memcpy(address.sun_path, options_.socket_path.c_str(),
                options_.socket_path.size() + 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
      throw InputError("ScheduleServer: socket() failed: " +
                       std::string(std::strerror(errno)));
    ::unlink(options_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
               sizeof(address)) != 0) {
      const int saved = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw InputError("ScheduleServer: bind(" + options_.socket_path +
                       ") failed: " + std::string(std::strerror(saved)));
    }
    if (::listen(listen_fd_, 128) != 0) {
      const int saved = errno;
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw InputError("ScheduleServer: listen failed: " +
                       std::string(std::strerror(saved)));
    }
  }

  if (options_.tcp_port >= 0) {
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port =
        htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::inet_pton(AF_INET, options_.tcp_bind.c_str(),
                    &address.sin_addr) != 1)
      throw InputError("ScheduleServer: bad tcp_bind address: " +
                       options_.tcp_bind);

    tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_listen_fd_ < 0)
      throw InputError("ScheduleServer: tcp socket() failed: " +
                       std::string(std::strerror(errno)));
    const int one = 1;
    ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    if (::bind(tcp_listen_fd_, reinterpret_cast<const sockaddr*>(&address),
               sizeof(address)) != 0 ||
        ::listen(tcp_listen_fd_, 128) != 0) {
      const int saved = errno;
      ::close(tcp_listen_fd_);
      tcp_listen_fd_ = -1;
      throw InputError("ScheduleServer: tcp bind(" + options_.tcp_bind +
                       ":" + std::to_string(options_.tcp_port) +
                       ") failed: " + std::string(std::strerror(saved)));
    }
    // Read the bound port back — with tcp_port = 0 the kernel picked an
    // ephemeral one, and callers (tests, multi-daemon launchers) need it.
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(tcp_listen_fd_,
                      reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0)
      tcp_listen_port_ = ntohs(bound.sin_port);
  }

  started_at_ = std::chrono::steady_clock::now();
  const std::size_t worker_count = metrics_.worker_count();
  workers_.reserve(worker_count);
  for (std::size_t w = 0; w < worker_count; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
  acceptor_ = std::thread([this] { accept_loop(); });
}

void ScheduleServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire) &&
         accepting_.load(std::memory_order_acquire)) {
    std::array<pollfd, 2> pfds{};
    nfds_t nfds = 0;
    if (listen_fd_ >= 0) pfds[nfds++] = pollfd{listen_fd_, POLLIN, 0};
    if (tcp_listen_fd_ >= 0)
      pfds[nfds++] = pollfd{tcp_listen_fd_, POLLIN, 0};
    const int ready = ::poll(pfds.data(), nfds, kPollMillis);
    if (ready <= 0) continue;  // timeout, EINTR, or transient error
    for (nfds_t k = 0; k < nfds; ++k) {
      if ((pfds[k].revents & POLLIN) == 0) continue;
      const int fd = ::accept(pfds[k].fd, nullptr, nullptr);
      if (fd < 0) continue;
      // Bound worker writes to unresponsive clients so a dead peer can
      // never wedge the pool (or stop()).
      timeval timeout{5, 0};
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
      if (pfds[k].fd == tcp_listen_fd_) {
        // Same latency-bound request/response traffic as the client side.
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      auto connection = std::make_shared<Connection>();
      connection->fd = fd;
      accepted_connections_.fetch_add(1, std::memory_order_relaxed);
      {
        const std::lock_guard<std::mutex> lock(connections_mutex_);
        connections_.push_back(connection);
      }
      connection->reader =
          std::thread([this, connection] { reader_loop(connection); });
    }
  }
}

void ScheduleServer::reader_loop(const std::shared_ptr<Connection>& connection) {
  FrameReader reader;
  std::array<std::uint8_t, 64 * 1024> chunk;
  while (!stopping_.load(std::memory_order_acquire) &&
         connection->open.load(std::memory_order_acquire)) {
    pollfd pfd{connection->fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = ::recv(connection->fd, chunk.data(), chunk.size(), 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    try {
      reader.feed({chunk.data(), static_cast<std::size_t>(n)});
      while (auto frame = reader.next()) {
        switch (frame->type) {
          case FrameType::kScheduleRequest:
          case FrameType::kSweepRequest: {
            if (options_.max_requests_per_connection > 0 &&
                ++connection->work_requests >
                    options_.max_requests_per_connection) {
              // The fairness valve: refuse and hang up; a well-behaved
              // client (the sweep driver) reconnects and carries on.
              request_limit_closes_.fetch_add(1, std::memory_order_relaxed);
              const auto body = encode_error(
                  {ErrorCode::kBusy,
                   "per-connection request limit reached; reconnect"});
              write_frame_to(*connection, FrameType::kError, body);
              connection->open.store(false, std::memory_order_release);
              break;
            }
            if (draining_.load(std::memory_order_acquire)) {
              // Mid-drain: queued work still completes, but new work is
              // refused synchronously so the client can fail over
              // instead of waiting on a daemon that is going away.
              drain_rejections_.fetch_add(1, std::memory_order_relaxed);
              const auto body = encode_error(
                  {ErrorCode::kBusy, "daemon is draining; retry elsewhere"});
              write_frame_to(*connection, FrameType::kError, body);
              break;
            }
            Job job;
            job.connection = connection;
            job.type = frame->type;
            job.payload = std::move(frame->payload);
            job.enqueued_at = std::chrono::steady_clock::now();
            if (!queue_.try_push(std::move(job))) {
              busy_rejections_.fetch_add(1, std::memory_order_relaxed);
              const auto body = encode_error(
                  {ErrorCode::kBusy, "request queue full; retry later"});
              write_frame_to(*connection, FrameType::kError, body);
            }
            break;
          }
          case FrameType::kMetricsRequest:
          case FrameType::kShutdown:
            handle_admin(connection, *frame);
            break;
          default: {
            // Server-to-client frame types arriving here mean the peer is
            // not speaking the client side of the protocol; drop it.
            const auto body = encode_error(
                {ErrorCode::kBadRequest, "unexpected frame type from client"});
            write_frame_to(*connection, FrameType::kError, body);
            connection->open.store(false, std::memory_order_release);
            break;
          }
        }
      }
    } catch (const WireError& error) {
      // The stream cannot be resynchronized after a malformed header;
      // tell the peer why and hang up.
      const auto body = encode_error({ErrorCode::kBadRequest, error.what()});
      write_frame_to(*connection, FrameType::kError, body);
      break;
    }
  }
  connection->open.store(false, std::memory_order_release);
}

void ScheduleServer::worker_loop(std::size_t worker) {
  // Warm per-worker scheduler instances: index = SchedulerKind. The
  // workspace refactors make reuse the whole point — a worker's solver
  // allocates on its first request of each kind and never again.
  std::array<std::unique_ptr<Scheduler>, 8> schedulers;
  const auto scheduler_for = [&](SchedulerKind kind) -> Scheduler& {
    auto& slot = schedulers[static_cast<std::size_t>(kind)];
    if (!slot) slot = make_scheduler(kind, options_.seed);
    return *slot;
  };

  // Request-digest memo: byte-identical request payloads map to the same
  // schedule key (a directory's snapshot is a pure function of now_s, and
  // now_s is part of the payload), so a repeated payload skips decode,
  // cost-matrix build, and key quantization — the expensive part of a
  // warm hit. Worker-local, so no locks; only payloads that survived full
  // validation are memoized. LRU by tick, small and bounded.
  struct MemoEntry {
    std::uint64_t hash = 0;
    std::vector<std::uint8_t> payload;
    ScheduleKey key;
    std::uint64_t tick = 0;
  };
  constexpr std::size_t kMemoCapacity = 32;
  std::vector<MemoEntry> memo;
  std::uint64_t memo_tick = 0;

  while (auto job = queue_.pop()) {
    const auto t0 = std::chrono::steady_clock::now();
    if (job->type == FrameType::kSweepRequest) {
      // A sweep shard: opaque to the service layer — decode, execute,
      // and encode all live in experiment/sweep_shard.hpp. Shards run
      // serially in this worker slot, so a daemon's sweep concurrency is
      // its worker count, same as schedule solves.
      bool failed = false;
      std::size_t units = 0;
      FrameType out_type = FrameType::kSweepResult;
      std::vector<std::uint8_t> out;
      try {
        out = handle_sweep_shard(job->payload, &units);
      } catch (const InputError& error) {
        out = encode_error({ErrorCode::kBadRequest, error.what()});
        out_type = FrameType::kError;
        failed = true;
      } catch (const std::exception& error) {
        out = encode_error({ErrorCode::kInternal, error.what()});
        out_type = FrameType::kError;
        failed = true;
      }
      const double shard_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      // Record before writing the response: a client that scrapes right
      // after its answer arrives sees its own shard counted.
      metrics_.record(worker, [&](MetricsRegistry& registry) {
        registry.counter("service.requests").add();
        registry.counter("service.sweep_shards").add();
        registry.counter("service.sweep_units").add(units);
        if (failed) registry.counter("service.errors").add();
        registry.histogram("service.sweep_s").observe(shard_s);
        registry.histogram("service.latency_s").observe(shard_s);
      });
      write_frame_to(*job->connection, out_type, out);
      continue;
    }
    bool hit = false, coalesced = false, solved = false, failed = false;
    bool memo_hit = false;
    double solve_s = 0.0;
    try {
      const std::uint64_t payload_hash = hash_bytes64(job->payload);
      ScheduleKey built_key;
      const ScheduleKey* key = nullptr;
      for (auto& entry : memo)
        if (entry.hash == payload_hash && entry.payload == job->payload) {
          entry.tick = ++memo_tick;
          key = &entry.key;
          memo_hit = true;
          break;
        }
      std::optional<ScheduleRequest> request;
      std::shared_ptr<const NetworkModel> network;
      if (!memo_hit) {
        request.emplace(decode_schedule_request(job->payload));
        if (request->messages.rows() != directory_.processor_count()) {
          const auto body = encode_error(
              {ErrorCode::kBadRequest,
               "request is for " + std::to_string(request->messages.rows()) +
                   " processors; this daemon serves " +
                   std::to_string(directory_.processor_count())});
          write_frame_to(*job->connection, FrameType::kError, body);
          failed = true;
        } else {
          network = snapshot_at(request->now_s);
          const CommMatrix comm{*network, request->messages};
          built_key = make_schedule_key(request->kind, request->hierarchical,
                                        comm.times(), options_.quantum);
          key = &built_key;
        }
      }
      if (key != nullptr) {
        ScheduleCache::Lookup lookup = cache_.acquire(*key);
        std::shared_ptr<const Schedule> schedule;
        ScheduleCache::EncodedPayload body;
        if (lookup.leader) {
          try {
            if (!request) {
              // Memo hit that must solve anyway (entry was evicted or
              // invalidated): pay the decode after all.
              request.emplace(decode_schedule_request(job->payload));
              network = snapshot_at(request->now_s);
            }
            const CommMatrix comm{*network, request->messages};
            const auto s0 = std::chrono::steady_clock::now();
            Schedule planned = [&] {
              if (request->hierarchical) {
                HierarchicalScheduler::Options hier;
                hier.inner = request->kind;
                hier.seed = options_.seed;
                return HierarchicalScheduler{detect_clusters(*network), hier}
                    .schedule(comm);
              }
              return scheduler_for(request->kind).schedule(comm);
            }();
            solve_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - s0)
                          .count();
            schedule = std::make_shared<const Schedule>(std::move(planned));
            // Publish the canonical encoding (flags zero) next to the
            // schedule: later hits serve these bytes verbatim — no
            // per-event re-serialization on the warm path — patching only
            // the flags byte per response.
            ScheduleResponse response;
            response.completion_s = schedule->completion_time();
            response.processors = schedule->processor_count();
            response.events = schedule->events();
            body = std::make_shared<const std::vector<std::uint8_t>>(
                encode_schedule_response(response));
            cache_.publish(*key, lookup.flight, schedule, body);
            solved = true;
          } catch (...) {
            cache_.abort(*key, lookup.flight, "scheduler threw");
            throw;
          }
        } else {
          schedule = lookup.schedule;
          body = lookup.encoded;
          hit = lookup.hit;
          coalesced = lookup.coalesced;
          if (!schedule)
            throw InputError("coalesced solve failed: " + lookup.error);
        }
        const auto flags = static_cast<std::uint8_t>((hit ? 1 : 0) |
                                                     (coalesced ? 2 : 0));
        if (body) {
          write_response_frame(*job->connection, *body, flags);
        } else {
          // Entry published before encoded payloads existed (defensive —
          // publish always stores one today).
          ScheduleResponse response;
          response.cache_hit = hit;
          response.coalesced = coalesced;
          response.completion_s = schedule->completion_time();
          response.processors = schedule->processor_count();
          response.events = schedule->events();
          const auto encoded = encode_schedule_response(response);
          write_frame_to(*job->connection, FrameType::kScheduleResponse,
                         encoded);
        }
        if (!memo_hit) {
          // Memoize only after the request served end to end; the payload
          // is not needed again, so it moves instead of copying.
          MemoEntry entry;
          entry.hash = payload_hash;
          entry.payload = std::move(job->payload);
          entry.key = std::move(built_key);
          entry.tick = ++memo_tick;
          if (memo.size() < kMemoCapacity) {
            memo.push_back(std::move(entry));
          } else {
            auto victim = memo.begin();
            for (auto it = memo.begin(); it != memo.end(); ++it)
              if (it->tick < victim->tick) victim = it;
            *victim = std::move(entry);
          }
        }
      }
    } catch (const WireError& error) {
      const auto body = encode_error({ErrorCode::kBadRequest, error.what()});
      write_frame_to(*job->connection, FrameType::kError, body);
      failed = true;
    } catch (const std::exception& error) {
      const auto body = encode_error({ErrorCode::kInternal, error.what()});
      write_frame_to(*job->connection, FrameType::kError, body);
      failed = true;
    }
    const double latency_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    metrics_.record(worker, [&](MetricsRegistry& registry) {
      registry.counter("service.requests").add();
      if (failed) registry.counter("service.errors").add();
      if (hit) registry.counter("service.cache_hit").add();
      if (coalesced) registry.counter("service.coalesced").add();
      if (memo_hit) registry.counter("service.memo_hit").add();
      if (solved) {
        registry.counter("service.solved").add();
        registry.histogram("service.solve_s").observe(solve_s);
      }
      registry.histogram("service.latency_s").observe(latency_s);
    });
  }
}

std::shared_ptr<const NetworkModel> ScheduleServer::snapshot_at(
    double now_s) {
  const bool invariant = directory_.time_invariant();
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    if (snapshot_ && (invariant || snapshot_now_ == now_s)) {
      snapshot_reuses_.fetch_add(1, std::memory_order_relaxed);
      return snapshot_;
    }
  }
  // Built outside the lock: a snapshot can be expensive (a drifting
  // directory regenerates P^2 random walks), and two workers racing to
  // build the same instant just do redundant work, not wrong work.
  auto fresh =
      std::make_shared<const NetworkModel>(directory_.snapshot(now_s));
  snapshot_builds_.fetch_add(1, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_now_ = now_s;
  snapshot_ = fresh;
  return fresh;
}

void ScheduleServer::handle_admin(const std::shared_ptr<Connection>& connection,
                                  const Frame& frame) {
  if (frame.type == FrameType::kShutdown) {
    write_frame_to(*connection, FrameType::kShutdown, {});
    request_stop();
    return;
  }
  const bool text = !frame.payload.empty() && frame.payload[0] == 1;
  const MetricsRegistry merged = scrape();
  std::ostringstream body;
  if (text)
    merged.write_text(body);
  else
    merged.write_json(body);
  const std::string& text_body = body.str();
  write_frame_to(*connection, FrameType::kMetricsResponse,
                 {reinterpret_cast<const std::uint8_t*>(text_body.data()),
                  text_body.size()});
}

void ScheduleServer::write_frame_to(Connection& connection, FrameType type,
                                    std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kFrameHeaderBytes + payload.size());
  append_frame(bytes, type, payload);
  const std::lock_guard<std::mutex> lock(connection.write_mutex);
  if (!connection.open.load(std::memory_order_acquire)) return;
  if (!send_all(connection.fd, bytes.data(), bytes.size()))
    connection.open.store(false, std::memory_order_release);
}

void ScheduleServer::write_response_frame(Connection& connection,
                                          std::span<const std::uint8_t> payload,
                                          std::uint8_t flags) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kFrameHeaderBytes + payload.size());
  append_frame(bytes, FrameType::kScheduleResponse, payload);
  // The canonical cached encoding carries flags = 0; per-response state
  // (cache_hit / coalesced) lives in exactly one byte, patched after the
  // copy instead of re-serializing the whole event list.
  bytes[kFrameHeaderBytes + 1] = flags;
  const std::lock_guard<std::mutex> lock(connection.write_mutex);
  if (!connection.open.load(std::memory_order_acquire)) return;
  if (!send_all(connection.fd, bytes.data(), bytes.size()))
    connection.open.store(false, std::memory_order_release);
}

MetricsRegistry ScheduleServer::scrape() const {
  MetricsRegistry merged = metrics_.scrape();
  const ScheduleCache::Stats stats = cache_.stats();
  merged.counter("service.cache.hits").add(stats.hits);
  merged.counter("service.cache.misses").add(stats.misses);
  merged.counter("service.cache.coalesced").add(stats.coalesced);
  merged.counter("service.cache.evictions").add(stats.evictions);
  merged.counter("service.cache.invalidations").add(stats.invalidations);
  merged.gauge("service.cache.entries")
      .set(static_cast<double>(stats.entries));
  merged.counter("service.busy_rejections")
      .add(busy_rejections_.load(std::memory_order_relaxed));
  merged.counter("service.drain_rejections")
      .add(drain_rejections_.load(std::memory_order_relaxed));
  merged.counter("service.request_limit_closes")
      .add(request_limit_closes_.load(std::memory_order_relaxed));
  merged.gauge("service.draining")
      .set(draining_.load(std::memory_order_relaxed) ? 1.0 : 0.0);
  merged.counter("service.connections")
      .add(accepted_connections_.load(std::memory_order_relaxed));
  merged.counter("service.snapshot_reuses")
      .add(snapshot_reuses_.load(std::memory_order_relaxed));
  merged.counter("service.snapshot_builds")
      .add(snapshot_builds_.load(std::memory_order_relaxed));
  merged.gauge("service.queue_depth").set(static_cast<double>(queue_.size()));
  merged.gauge("service.queue_capacity")
      .set(static_cast<double>(queue_.capacity()));
  merged.gauge("service.workers").set(static_cast<double>(workers_.size()));
  const double uptime_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  merged.gauge("service.uptime_s").set(uptime_s);
  if (uptime_s > 0.0)
    merged.gauge("service.qps")
        .set(static_cast<double>(merged.counter("service.requests").value()) /
             uptime_s);
  return merged;
}

void ScheduleServer::wait() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait(lock, [this] { return stop_requested_; });
  lock.unlock();
  stop();
}

void ScheduleServer::request_stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void ScheduleServer::drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) {
    stop();
    return;
  }
  // Refuse new connections first: retire the acceptor and unlink the
  // socket path so fresh connects fail fast (ENOENT) instead of queueing
  // behind a daemon that is going away. Established connections stay up —
  // their queued responses must still be delivered, and their readers now
  // answer new schedule requests with kBusy.
  accepting_.store(false, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  // Close the queue to producers and wait for the backlog to empty; the
  // workers keep popping (and writing responses to the open connections)
  // until it is. In-flight jobs are covered by stop()'s worker join.
  queue_.close();
  while (queue_.size() > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  stop();
}

void ScheduleServer::stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mutex_);
    if (stopped_) {
      // Still wake any wait()er that raced the first stop.
      stop_requested_ = true;
      stop_cv_.notify_all();
      return;
    }
    stopped_ = true;
    stop_requested_ = true;
  }
  stop_cv_.notify_all();

  stopping_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();

  // Readers exit on the next poll tick; join them before touching fds so
  // no thread reads a closed descriptor.
  std::vector<std::shared_ptr<Connection>> connections;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections = connections_;
  }
  for (const auto& connection : connections)
    if (connection->reader.joinable()) connection->reader.join();

  // Workers drain whatever was queued (responses still reach open
  // connections), then see the closed queue and exit.
  queue_.close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  for (const auto& connection : connections) {
    connection->open.store(false, std::memory_order_release);
    if (connection->fd >= 0) ::close(connection->fd);
    connection->fd = -1;
  }
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
}

}  // namespace hcs::service
