#include "service/schedule_cache.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "netmodel/cluster_detect.hpp"
#include "util/error.hpp"

namespace hcs::service {

std::uint64_t hash_bytes64(std::span<const std::uint8_t> bytes) noexcept {
  // Four independent FNV-1a-style lanes over 8-byte chunks: one
  // multiply per lane per 32 bytes with no cross-lane dependency, so the
  // chain is 4x shorter than byte-wise FNV while staying deterministic.
  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  std::uint64_t lane[4] = {0xCBF29CE484222325ULL, 0x9E3779B97F4A7C15ULL,
                           0xC2B2AE3D27D4EB4FULL, 0x165667B19E3779F9ULL};
  std::size_t pos = 0;
  while (bytes.size() - pos >= 32) {
    for (int k = 0; k < 4; ++k) {
      std::uint64_t chunk;
      std::memcpy(&chunk, bytes.data() + pos + 8 * k, 8);
      lane[k] = (lane[k] ^ chunk) * kPrime;
    }
    pos += 32;
  }
  while (bytes.size() - pos >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, bytes.data() + pos, 8);
    lane[0] = (lane[0] ^ chunk) * kPrime;
    pos += 8;
  }
  for (; pos < bytes.size(); ++pos)
    lane[1] = (lane[1] ^ bytes[pos]) * kPrime;
  std::uint64_t h = bytes.size();
  for (const std::uint64_t l : lane) h = (h ^ l) * kPrime;
  h ^= h >> 32;
  h *= kPrime;
  h ^= h >> 29;
  return h;
}

ScheduleKey make_schedule_key(SchedulerKind kind, bool hierarchical,
                              const Matrix<double>& cost, double quantum) {
  if (!(quantum > 0.0))
    throw InputError("make_schedule_key: quantum must be positive");
  if (!cost.square()) throw InputError("make_schedule_key: cost must be square");
  ScheduleKey key;
  key.kind = static_cast<std::uint8_t>(kind);
  key.hierarchical = hierarchical ? 1 : 0;
  key.processors = static_cast<std::uint32_t>(cost.rows());
  key.levels.reserve(cost.rows() * cost.cols());
  for (const double c : cost.data())
    key.levels.push_back(quantize_log_level(c, quantum));
  // Digest covers every identity-bearing field; computed once here so
  // equal keys always carry equal digests.
  std::uint8_t header[8] = {};
  header[0] = key.kind;
  header[1] = key.hierarchical;
  std::memcpy(header + 4, &key.processors, 4);
  std::uint64_t h = hash_bytes64(header);
  h ^= hash_bytes64(
      {reinterpret_cast<const std::uint8_t*>(key.levels.data()),
       4 * key.levels.size()});
  key.digest = h * 0x100000001B3ULL;
  return key;
}

/// One in-flight solve. Followers wait on `cv`; the leader sets either
/// `result` or `error` under `mutex` and notifies.
class ScheduleCache::Flight {
 public:
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::shared_ptr<const Schedule> result;
  EncodedPayload encoded;
  std::string error;
};

struct ScheduleCache::Shard {
  struct Entry {
    std::shared_ptr<const Schedule> schedule;
    EncodedPayload encoded;
    std::uint64_t tick = 0;  ///< shard-local LRU clock at last touch
  };

  std::mutex mutex;
  std::uint64_t tick = 0;
  std::unordered_map<ScheduleKey, Entry, ScheduleKeyHash> entries;
  std::unordered_map<ScheduleKey, std::shared_ptr<Flight>, ScheduleKeyHash>
      in_flight;
};

ScheduleCache::ScheduleCache(Options options) {
  const std::size_t shard_count = std::max<std::size_t>(options.shards, 1);
  const std::size_t capacity =
      std::max<std::size_t>(options.capacity, shard_count);
  per_shard_capacity_ = capacity / shard_count;
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s)
    shards_.push_back(std::make_unique<Shard>());
}

ScheduleCache::~ScheduleCache() = default;

ScheduleCache::Shard& ScheduleCache::shard_for(const ScheduleKey& key) {
  return *shards_[ScheduleKeyHash{}(key) % shards_.size()];
}

ScheduleCache::Lookup ScheduleCache::acquire(const ScheduleKey& key) {
  Shard& shard = shard_for(key);
  std::shared_ptr<Flight> flight;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (const auto it = shard.entries.find(key); it != shard.entries.end()) {
      it->second.tick = ++shard.tick;
      hits_.fetch_add(1, std::memory_order_relaxed);
      Lookup lookup;
      lookup.schedule = it->second.schedule;
      lookup.encoded = it->second.encoded;
      lookup.hit = true;
      return lookup;
    }
    if (const auto it = shard.in_flight.find(key);
        it != shard.in_flight.end()) {
      flight = it->second;  // fall through to wait outside the shard lock
    } else {
      flight = std::make_shared<Flight>();
      shard.in_flight.emplace(key, flight);
      misses_.fetch_add(1, std::memory_order_relaxed);
      Lookup lookup;
      lookup.flight = std::move(flight);
      lookup.leader = true;
      return lookup;
    }
  }
  std::unique_lock<std::mutex> wait_lock(flight->mutex);
  flight->cv.wait(wait_lock, [&flight] { return flight->done; });
  coalesced_.fetch_add(1, std::memory_order_relaxed);
  Lookup lookup;
  lookup.schedule = flight->result;
  lookup.encoded = flight->encoded;
  lookup.error = flight->error;
  lookup.coalesced = true;
  return lookup;
}

void ScheduleCache::publish(const ScheduleKey& key,
                            const std::shared_ptr<Flight>& flight,
                            std::shared_ptr<const Schedule> schedule,
                            EncodedPayload encoded) {
  Shard& shard = shard_for(key);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.in_flight.erase(key);
    auto& entry = shard.entries[key];
    entry.schedule = schedule;
    entry.encoded = encoded;
    entry.tick = ++shard.tick;
    while (shard.entries.size() > per_shard_capacity_) {
      // Linear LRU scan: shards are small (capacity / shard_count
      // entries) and eviction only runs on insert past capacity, so the
      // scan is cheaper than maintaining an intrusive list on every hit.
      auto victim = shard.entries.begin();
      for (auto it = shard.entries.begin(); it != shard.entries.end(); ++it)
        if (it->second.tick < victim->second.tick) victim = it;
      shard.entries.erase(victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  {
    const std::lock_guard<std::mutex> lock(flight->mutex);
    flight->result = std::move(schedule);
    flight->encoded = std::move(encoded);
    flight->done = true;
  }
  flight->cv.notify_all();
}

void ScheduleCache::abort(const ScheduleKey& key,
                          const std::shared_ptr<Flight>& flight,
                          std::string error) {
  Shard& shard = shard_for(key);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.in_flight.erase(key);
  }
  {
    const std::lock_guard<std::mutex> lock(flight->mutex);
    flight->error =
        error.empty() ? std::string("schedule solve aborted") : std::move(error);
    flight->done = true;
  }
  flight->cv.notify_all();
}

void ScheduleCache::invalidate_all() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    invalidations_.fetch_add(shard->entries.size(),
                             std::memory_order_relaxed);
    shard->entries.clear();
  }
}

ScheduleCache::Stats ScheduleCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    stats.entries += shard->entries.size();
  }
  return stats;
}

}  // namespace hcs::service
