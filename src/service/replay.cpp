#include "service/replay.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hcs::service {
namespace {

struct ConnectionTally {
  std::vector<double> latencies_us;
  std::size_t completed = 0;
  std::size_t cache_hits = 0;
  std::size_t coalesced = 0;
  std::size_t busy = 0;
  std::size_t errors = 0;
};

/// Intended arrival times (seconds from trace start) for every request,
/// drawn deterministically from the seed before the clock starts.
/// Closed-loop traces have none.
std::vector<double> intended_arrivals(const ReplayConfig& config) {
  std::vector<double> arrivals;
  if (config.arrival == Arrival::kClosed) return arrivals;
  arrivals.reserve(config.requests);
  Rng rng{config.seed ^ 0xA881AA11ULL};
  double now_s = 0.0;
  if (config.arrival == Arrival::kPoisson) {
    const double mean_gap_s = 1.0 / config.offered_qps;
    for (std::size_t i = 0; i < config.requests; ++i) {
      // Exponential inter-arrival via inverse transform; next_double()
      // is in [0, 1), so 1 - u is in (0, 1] and the log is finite.
      now_s += -mean_gap_s * std::log(1.0 - rng.next_double());
      arrivals.push_back(now_s);
    }
  } else {
    // Bursts of burst_size arrive back-to-back, spaced so the average
    // rate matches offered_qps; the same average load as kPoisson, but
    // maximally clumped.
    const double burst_gap_s =
        static_cast<double>(config.burst_size) / config.offered_qps;
    for (std::size_t i = 0; i < config.requests; ++i) {
      if (i % config.burst_size == 0 && i > 0) now_s += burst_gap_s;
      arrivals.push_back(now_s);
    }
  }
  return arrivals;
}

}  // namespace

ReplayStats run_replay(const ReplayConfig& config) {
  if (config.requests == 0)
    throw InputError("run_replay: requests must be positive");
  if (config.connections == 0)
    throw InputError("run_replay: connections must be positive");
  if (config.processors < 2)
    throw InputError("run_replay: processors must be at least 2");
  if (config.arrival != Arrival::kClosed && !(config.offered_qps > 0.0))
    throw InputError("run_replay: open-loop arrivals need offered_qps > 0");
  if (config.arrival == Arrival::kBurst && config.burst_size == 0)
    throw InputError("run_replay: burst_size must be positive");

  const std::size_t distinct =
      std::clamp<std::size_t>(config.distinct_workloads, 1, config.requests);

  // Pre-generate the workload pool: replay measures the daemon, so
  // matrix generation must not sit inside the timed window. The
  // instances' networks are discarded — the daemon owns the directory;
  // clients only ship message sizes.
  std::vector<MessageMatrix> workloads;
  workloads.reserve(distinct);
  for (std::size_t w = 0; w < distinct; ++w)
    workloads.push_back(
        make_instance(config.scenario, config.processors, config.seed + w)
            .messages);

  const std::vector<double> arrivals = intended_arrivals(config);

  // Connect everything before starting the clock, so wall_s measures
  // request service, not connection setup.
  std::vector<ServiceClient> clients;
  clients.reserve(config.connections);
  for (std::size_t c = 0; c < config.connections; ++c)
    clients.emplace_back(config.socket_path);

  std::vector<ConnectionTally> tallies(config.connections);
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(config.connections);
    for (std::size_t c = 0; c < config.connections; ++c) {
      threads.emplace_back([&, c] {
        ServiceClient& client = clients[c];
        ConnectionTally& tally = tallies[c];
        for (std::size_t i = c; i < config.requests;
             i += config.connections) {
          ScheduleRequest request;
          request.kind = config.kind;
          request.hierarchical = config.hierarchical;
          request.now_s = static_cast<double>(i) * config.time_step_s;
          request.messages = workloads[i % distinct];
          auto start = std::chrono::steady_clock::now();
          if (!arrivals.empty()) {
            // Open loop: hold the request until its intended arrival,
            // then charge latency from that instant — time spent queued
            // behind this connection's slow responses counts against the
            // daemon, exactly as it would for an outside observer.
            const auto intended =
                t0 + std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(arrivals[i]));
            std::this_thread::sleep_until(intended);
            start = intended;
          }
          try {
            const ScheduleResponse response = client.schedule(request);
            const double us =
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            tally.latencies_us.push_back(us);
            ++tally.completed;
            if (response.cache_hit) ++tally.cache_hits;
            if (response.coalesced) ++tally.coalesced;
          } catch (const ServiceError& error) {
            if (error.code() == ErrorCode::kBusy)
              ++tally.busy;
            else
              ++tally.errors;
          } catch (const std::exception&) {
            ++tally.errors;
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ReplayStats stats;
  stats.wall_s = wall_s;
  stats.offered_qps =
      config.arrival == Arrival::kClosed ? 0.0 : config.offered_qps;
  std::vector<double> latencies_us;
  latencies_us.reserve(config.requests);
  for (const ConnectionTally& tally : tallies) {
    stats.completed += tally.completed;
    stats.cache_hits += tally.cache_hits;
    stats.coalesced += tally.coalesced;
    stats.busy += tally.busy;
    stats.errors += tally.errors;
    latencies_us.insert(latencies_us.end(), tally.latencies_us.begin(),
                        tally.latencies_us.end());
  }
  if (wall_s > 0.0) stats.qps = static_cast<double>(stats.completed) / wall_s;
  if (!latencies_us.empty()) {
    stats.p50_us = quantile(latencies_us, 0.5);
    stats.p99_us = quantile(latencies_us, 0.99);
    stats.max_us = *std::max_element(latencies_us.begin(), latencies_us.end());
    double sum = 0.0;
    for (const double us : latencies_us) sum += us;
    stats.mean_us = sum / static_cast<double>(latencies_us.size());
  }
  return stats;
}

}  // namespace hcs::service
