#include "service/replay.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace hcs::service {
namespace {

struct ConnectionTally {
  std::vector<double> latencies_us;
  std::size_t completed = 0;
  std::size_t cache_hits = 0;
  std::size_t coalesced = 0;
  std::size_t busy = 0;
  std::size_t errors = 0;
};

}  // namespace

ReplayStats run_replay(const ReplayConfig& config) {
  if (config.requests == 0)
    throw InputError("run_replay: requests must be positive");
  if (config.connections == 0)
    throw InputError("run_replay: connections must be positive");
  if (config.processors < 2)
    throw InputError("run_replay: processors must be at least 2");

  const std::size_t distinct =
      std::clamp<std::size_t>(config.distinct_workloads, 1, config.requests);

  // Pre-generate the workload pool: replay measures the daemon, so
  // matrix generation must not sit inside the timed window. The
  // instances' networks are discarded — the daemon owns the directory;
  // clients only ship message sizes.
  std::vector<MessageMatrix> workloads;
  workloads.reserve(distinct);
  for (std::size_t w = 0; w < distinct; ++w)
    workloads.push_back(
        make_instance(config.scenario, config.processors, config.seed + w)
            .messages);

  // Connect everything before starting the clock, so wall_s measures
  // request service, not connection setup.
  std::vector<ServiceClient> clients;
  clients.reserve(config.connections);
  for (std::size_t c = 0; c < config.connections; ++c)
    clients.emplace_back(config.socket_path);

  std::vector<ConnectionTally> tallies(config.connections);
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(config.connections);
    for (std::size_t c = 0; c < config.connections; ++c) {
      threads.emplace_back([&, c] {
        ServiceClient& client = clients[c];
        ConnectionTally& tally = tallies[c];
        for (std::size_t i = c; i < config.requests;
             i += config.connections) {
          ScheduleRequest request;
          request.kind = config.kind;
          request.hierarchical = config.hierarchical;
          request.now_s = static_cast<double>(i) * config.time_step_s;
          request.messages = workloads[i % distinct];
          const auto start = std::chrono::steady_clock::now();
          try {
            const ScheduleResponse response = client.schedule(request);
            const double us =
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            tally.latencies_us.push_back(us);
            ++tally.completed;
            if (response.cache_hit) ++tally.cache_hits;
            if (response.coalesced) ++tally.coalesced;
          } catch (const ServiceError& error) {
            if (error.code() == ErrorCode::kBusy)
              ++tally.busy;
            else
              ++tally.errors;
          } catch (const std::exception&) {
            ++tally.errors;
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ReplayStats stats;
  stats.wall_s = wall_s;
  std::vector<double> latencies_us;
  latencies_us.reserve(config.requests);
  for (const ConnectionTally& tally : tallies) {
    stats.completed += tally.completed;
    stats.cache_hits += tally.cache_hits;
    stats.coalesced += tally.coalesced;
    stats.busy += tally.busy;
    stats.errors += tally.errors;
    latencies_us.insert(latencies_us.end(), tally.latencies_us.begin(),
                        tally.latencies_us.end());
  }
  if (wall_s > 0.0) stats.qps = static_cast<double>(stats.completed) / wall_s;
  if (!latencies_us.empty()) {
    stats.p50_us = quantile(latencies_us, 0.5);
    stats.p99_us = quantile(latencies_us, 0.99);
    stats.max_us = *std::max_element(latencies_us.begin(), latencies_us.end());
    double sum = 0.0;
    for (const double us : latencies_us) sum += us;
    stats.mean_us = sum / static_cast<double>(latencies_us.size());
  }
  return stats;
}

}  // namespace hcs::service
