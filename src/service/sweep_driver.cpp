#include "service/sweep_driver.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "experiment/sweep_shard.hpp"
#include "experiment/sweep_units.hpp"
#include "service/client.hpp"
#include "util/error.hpp"

namespace hcs::service {

struct SocketSweepEndpoint::Impl {
  std::optional<ServiceClient> client;
};

SocketSweepEndpoint::SocketSweepEndpoint(std::string endpoint,
                                         double timeout_s)
    : endpoint_(std::move(endpoint)),
      timeout_s_(timeout_s),
      impl_(std::make_unique<Impl>()) {}

SocketSweepEndpoint::~SocketSweepEndpoint() = default;

std::vector<std::uint8_t> SocketSweepEndpoint::run_shard(
    std::span<const std::uint8_t> request) {
  try {
    if (!impl_->client) impl_->client.emplace(endpoint_, timeout_s_);
    return impl_->client->sweep_shard(request);
  } catch (const std::exception& error) {
    // Whatever went wrong — connect refused, timeout mid-read, a peer
    // kError, a torn frame — the connection state is unknown; drop it so
    // the next attempt starts clean, and let the dispatcher requeue.
    impl_->client.reset();
    throw EndpointError(endpoint_ + ": " + error.what());
  }
}

std::vector<std::unique_ptr<WorkerEndpoint>> make_worker_endpoints(
    const std::vector<WorkerSpec>& specs, double timeout_s) {
  std::vector<std::unique_ptr<WorkerEndpoint>> endpoints;
  for (const WorkerSpec& spec : specs) {
    switch (spec.kind) {
      case WorkerSpec::Kind::kLocal:
        for (std::size_t k = 0; k < spec.count; ++k)
          endpoints.push_back(std::make_unique<LocalSweepEndpoint>());
        break;
      case WorkerSpec::Kind::kUnix:
        endpoints.push_back(std::make_unique<SocketSweepEndpoint>(
            "unix:" + spec.socket_path, timeout_s));
        break;
      case WorkerSpec::Kind::kTcp:
        endpoints.push_back(std::make_unique<SocketSweepEndpoint>(
            "tcp:" + spec.host + ":" + std::to_string(spec.port), timeout_s));
        break;
    }
  }
  return endpoints;
}

namespace {

/// Shared dispatch state: a deque of pending shard indices, the global
/// value vector the shards merge into, and liveness accounting. All
/// mutation under one mutex; `ready` wakes idle dispatchers when a
/// failed shard is requeued or the sweep finishes/aborts.
struct Dispatch {
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<std::size_t> pending;
  std::vector<char> done;
  std::size_t done_count = 0;
  std::size_t healthy = 0;
  std::size_t redispatches = 0;
  bool abandoned = false;
  std::vector<double> values;
  std::vector<std::string> last_errors;
};

/// Runs one endpoint's dispatcher: pop a shard, execute, merge; requeue
/// on failure and retire after `max_failures` consecutive failures.
void dispatch_loop(WorkerEndpoint& endpoint, DistributedWorkerReport& row,
                   Dispatch& d, const SweepShardRequest& base,
                   std::size_t total_units, std::size_t shard_units,
                   std::size_t values_per_unit, std::size_t shard_count,
                   std::size_t max_failures) {
  std::size_t consecutive = 0;
  while (true) {
    std::size_t shard = 0;
    {
      std::unique_lock<std::mutex> lock(d.mutex);
      d.ready.wait(lock, [&] {
        return !d.pending.empty() || d.done_count == shard_count ||
               d.abandoned;
      });
      if (d.done_count == shard_count || d.abandoned) return;
      shard = d.pending.front();
      d.pending.pop_front();
    }
    const std::size_t begin = shard * shard_units;
    const std::size_t end = std::min(begin + shard_units, total_units);
    SweepShardRequest request = base;
    request.unit_begin = static_cast<std::uint32_t>(begin);
    request.unit_end = static_cast<std::uint32_t>(end);

    bool ok = false;
    SweepShardResult result;
    std::string error;
    try {
      const auto raw = endpoint.run_shard(encode_sweep_shard_request(request));
      result = decode_sweep_shard_result(raw);
      if (result.kind != base.kind || result.unit_begin != begin ||
          result.unit_count != end - begin ||
          result.values_per_unit != values_per_unit)
        throw EndpointError(endpoint.name() +
                            ": shard result does not match request");
      ok = true;
    } catch (const std::exception& failure) {
      error = failure.what();
    }

    const std::lock_guard<std::mutex> lock(d.mutex);
    if (ok) {
      consecutive = 0;
      row.shards += 1;
      row.units += end - begin;
      if (!d.done[shard]) {
        d.done[shard] = 1;
        ++d.done_count;
        std::copy(result.values.begin(), result.values.end(),
                  d.values.begin() +
                      static_cast<std::ptrdiff_t>(begin * values_per_unit));
      }
      // A duplicate (another endpoint recomputed a shard we timed out
      // on) is dropped here: the bytes would be identical anyway.
      if (d.done_count == shard_count) {
        d.ready.notify_all();
        return;
      }
    } else {
      ++consecutive;
      row.failures += 1;
      d.pending.push_back(shard);
      ++d.redispatches;
      d.ready.notify_all();
      if (consecutive >= max_failures) {
        row.healthy = false;
        d.last_errors.push_back(error);
        if (--d.healthy == 0) {
          d.abandoned = true;
          d.ready.notify_all();
        }
        return;
      }
    }
  }
}

/// The shared core: shard [0, total_units) into contiguous blocks, run
/// one dispatcher thread per endpoint, return the merged value vector.
std::vector<double> run_sharded(const SweepShardRequest& base,
                                std::size_t total_units,
                                std::size_t values_per_unit,
                                DistributedSweepOptions& options,
                                DistributedReport* report) {
  if (options.endpoints.empty())
    throw InputError("distributed sweep: no worker endpoints");
  if (options.max_failures == 0)
    throw InputError("distributed sweep: max_failures must be >= 1");

  const std::size_t endpoint_count = options.endpoints.size();
  std::size_t shard_units = options.shard_units;
  if (shard_units == 0)
    shard_units = std::max<std::size_t>(
        1, (total_units + 4 * endpoint_count - 1) / (4 * endpoint_count));
  const std::size_t shard_count =
      total_units == 0 ? 0 : (total_units + shard_units - 1) / shard_units;

  Dispatch d;
  d.values.assign(total_units * values_per_unit, 0.0);
  d.done.assign(shard_count, 0);
  for (std::size_t s = 0; s < shard_count; ++s) d.pending.push_back(s);
  d.healthy = endpoint_count;

  std::vector<DistributedWorkerReport> rows(endpoint_count);
  for (std::size_t e = 0; e < endpoint_count; ++e)
    rows[e].name = options.endpoints[e]->name();

  std::vector<std::thread> dispatchers;
  dispatchers.reserve(endpoint_count);
  for (std::size_t e = 0; e < endpoint_count; ++e)
    dispatchers.emplace_back([&, e] {
      dispatch_loop(*options.endpoints[e], rows[e], d, base, total_units,
                    shard_units, values_per_unit, shard_count,
                    options.max_failures);
    });
  for (std::thread& t : dispatchers) t.join();

  if (report != nullptr) {
    report->workers = rows;
    report->shard_count = shard_count;
    report->redispatches = d.redispatches;
  }
  if (d.done_count < shard_count) {
    std::string detail;
    for (const std::string& e : d.last_errors) {
      if (!detail.empty()) detail += "; ";
      detail += e;
    }
    throw InputError(
        "distributed sweep: all workers failed with " +
        std::to_string(shard_count - d.done_count) + " of " +
        std::to_string(shard_count) + " shard(s) incomplete" +
        (detail.empty() ? "" : " (" + detail + ")"));
  }
  return std::move(d.values);
}

}  // namespace

ExperimentResult run_distributed_sweep(const ExperimentConfig& config,
                                       DistributedSweepOptions& options,
                                       DistributedReport* report) {
  validate_experiment_config(config);
  const SweepUnitSpace space = SweepUnitSpace::of(config);

  SweepShardRequest base;
  base.kind = SweepKind::kFigure;
  base.figure = config;
  // Local-only concerns never travel: shards run serially in one worker
  // slot, and metrics sinks are pointers.
  base.figure.threads = 0;
  base.figure.metrics = nullptr;

  const std::vector<double> values = run_sharded(
      base, space.total_units(), space.values_per_unit(), options, report);
  return assemble_experiment_result(config, values);
}

FaultSweepResult run_distributed_fault_sweep(const FaultSweepConfig& config,
                                             DistributedSweepOptions& options,
                                             DistributedReport* report) {
  validate_fault_sweep_config(config);
  // The baseline fixes every row's fault horizon, so it is computed
  // exactly once — here — and shipped with each shard.
  FaultSweepContext context{config};
  const double baseline = context.fault_free_completion();

  SweepShardRequest base;
  base.kind = SweepKind::kFault;
  base.fault = config;
  base.fault.threads = 0;
  base.fault_baseline_s = baseline;

  const std::size_t row_count = config.max_crashes + 1;
  const std::vector<double> values =
      run_sharded(base, row_count, kFaultRowValues, options, report);

  FaultSweepResult result;
  result.config = config;
  result.algorithm_name = context.algorithm_name();
  result.fault_free_completion_s = baseline;
  result.rows.reserve(row_count);
  for (std::size_t crashes = 0; crashes < row_count; ++crashes)
    result.rows.push_back(fault_row_from_values(
        crashes, std::span<const double>(values).subspan(
                     crashes * kFaultRowValues, kFaultRowValues)));
  return result;
}

}  // namespace hcs::service
