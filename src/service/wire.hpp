// hcsd wire protocol: length-prefixed binary frames.
//
// The scheduling daemon and its clients exchange frames over a stream
// socket. Every frame is
//
//   [u32 payload_length][u8 frame_type][payload bytes ...]
//
// with all integers little-endian and doubles IEEE-754 bit patterns
// carried as u64. The length counts only the payload (not the 5-byte
// header) and is bounded by kMaxPayloadBytes, so a corrupt or hostile
// peer can neither make the receiver allocate unboundedly nor desync the
// stream silently — any malformed header or payload throws WireError and
// the connection is dropped.
//
// Frame payloads:
//   kScheduleRequest   u8 version, u8 scheduler_kind, u8 flags
//                      (bit 0: hierarchical), u8 reserved, u32 P,
//                      f64 now_s, P*P u64 message bytes (row-major,
//                      sender-major like CommMatrix)
//   kScheduleResponse  u8 version, u8 flags (bit 0: cache hit, bit 1:
//                      coalesced onto another request's in-flight solve),
//                      u16 reserved, u32 P, f64 completion_s,
//                      u32 event_count, u32 reserved, then per event
//                      u32 src, u32 dst, f64 start_s, f64 finish_s
//   kMetricsRequest    u8 format (0 = JSON, 1 = text)
//   kMetricsResponse   UTF-8 scrape body
//   kError             u16 error code (ErrorCode), UTF-8 message
//   kShutdown          empty; the server acknowledges with an empty
//                      kShutdown frame, finishes in-flight work, and exits
//   kSweepRequest      opaque sweep shard request (encoded by
//                      src/experiment/sweep_shard.hpp: a contiguous block
//                      of the global work-unit index space plus the sweep
//                      spec needed to run it)
//   kSweepResult       opaque sweep shard result (same codec: the per-unit
//                      accumulator values for the requested block)
//
// Encoding and decoding are pure functions of the bytes — no I/O here —
// so the whole protocol is unit- and fuzz-testable without a socket.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "core/scheduler.hpp"
#include "util/error.hpp"
#include "workload/generators.hpp"

namespace hcs::service {

/// Thrown on any malformed frame: bad header, truncated or oversized
/// payload, unknown type or enum value, inconsistent counts.
class WireError : public InputError {
 public:
  explicit WireError(const std::string& what) : InputError(what) {}
};

enum class FrameType : std::uint8_t {
  kScheduleRequest = 1,
  kScheduleResponse = 2,
  kMetricsRequest = 3,
  kMetricsResponse = 4,
  kError = 5,
  kShutdown = 6,
  kSweepRequest = 7,
  kSweepResult = 8,
};

enum class ErrorCode : std::uint16_t {
  kBusy = 1,        ///< request queue full — backpressure, retry later
  kBadRequest = 2,  ///< malformed or out-of-contract request
  kInternal = 3,    ///< scheduling failed server-side
};

/// Protocol version carried in request/response payloads.
inline constexpr std::uint8_t kWireVersion = 1;
/// Hard payload bound: a P = kMaxProcessors request is ~8 MiB.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 26;
/// Largest exchange the service accepts (bounds request/response size).
inline constexpr std::uint32_t kMaxProcessors = 1024;
/// Bytes preceding the payload: u32 length + u8 type.
inline constexpr std::size_t kFrameHeaderBytes = 5;

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;
};

/// A client's ask: schedule this total exchange against the directory
/// view at now_s.
struct ScheduleRequest {
  SchedulerKind kind = SchedulerKind::kOpenShop;
  bool hierarchical = false;
  double now_s = 0.0;       ///< directory snapshot instant
  MessageMatrix messages;   ///< P x P bytes, sender-major
};

/// The server's answer: the timed schedule plus cache provenance.
struct ScheduleResponse {
  bool cache_hit = false;  ///< served from the schedule cache
  bool coalesced = false;  ///< waited on an identical in-flight solve
  double completion_s = 0.0;
  std::size_t processors = 0;
  std::vector<ScheduledEvent> events;

  /// Materializes the events as a Schedule (validates nothing beyond the
  /// Schedule constructor's own checks).
  [[nodiscard]] Schedule to_schedule() const {
    return Schedule{processors, events};
  }
};

/// Decoded kError payload.
struct ErrorFrame {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

// --- payload codecs (pure; throw WireError on malformed input) ---------

[[nodiscard]] std::vector<std::uint8_t> encode_schedule_request(
    const ScheduleRequest& request);
[[nodiscard]] ScheduleRequest decode_schedule_request(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_schedule_response(
    const ScheduleResponse& response);
[[nodiscard]] ScheduleResponse decode_schedule_response(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_error(const ErrorFrame& error);
[[nodiscard]] ErrorFrame decode_error(std::span<const std::uint8_t> payload);

// --- framing ------------------------------------------------------------

/// Appends one complete frame (header + payload) to `out`. Throws
/// WireError when the payload exceeds kMaxPayloadBytes.
void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::span<const std::uint8_t> payload);

/// Incremental frame decoder for a byte stream: feed() raw bytes as they
/// arrive, next() yields complete frames in order. Malformed headers
/// (oversized length, unknown type) throw WireError — the stream cannot
/// be resynchronized after that, so callers drop the connection.
class FrameReader {
 public:
  /// Appends raw stream bytes.
  void feed(std::span<const std::uint8_t> bytes);

  /// Extracts the next complete frame, or nullopt when more bytes are
  /// needed. Throws WireError on a malformed header.
  [[nodiscard]] std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace hcs::service
