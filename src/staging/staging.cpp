#include "staging/staging.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace hcs {

std::string_view staging_policy_name(StagingPolicy policy) {
  switch (policy) {
    case StagingPolicy::kFifo: return "fifo";
    case StagingPolicy::kEdf: return "edf";
    case StagingPolicy::kPriorityFirst: return "priority";
    case StagingPolicy::kWeightedSlack: return "weighted-slack";
  }
  throw InputError("staging_policy_name: unknown policy");
}

StagingResult stage_data(LinkGraph& graph, const std::vector<DataItem>& items,
                         const std::vector<StagingRequest>& requests,
                         StagingPolicy policy) {
  for (const DataItem& item : items) {
    if (item.initial_sources.empty())
      throw InputError("stage_data: item with no source");
    for (const std::size_t s : item.initial_sources)
      check(s < graph.node_count(), "stage_data: source out of range");
  }
  for (const StagingRequest& request : requests) {
    check(request.item < items.size(), "stage_data: unknown item");
    check(request.destination < graph.node_count(),
          "stage_data: destination out of range");
    if (request.priority <= 0.0)
      throw InputError("stage_data: priority must be positive");
  }

  graph.reset_reservations();

  // Per-item copy state: where copies exist and from when.
  struct Copies {
    std::vector<std::size_t> nodes;
    std::vector<double> available_s;
  };
  std::vector<Copies> copies(items.size());
  for (std::size_t k = 0; k < items.size(); ++k)
    for (const std::size_t node : items[k].initial_sources) {
      copies[k].nodes.push_back(node);
      copies[k].available_s.push_back(0.0);
    }

  // Policy-determined processing order.
  std::vector<std::size_t> order(requests.size());
  std::iota(order.begin(), order.end(), 0);
  const auto by = [&](auto key) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return key(requests[a]) < key(requests[b]);
                     });
  };
  switch (policy) {
    case StagingPolicy::kFifo:
      break;
    case StagingPolicy::kEdf:
      by([](const StagingRequest& r) { return r.deadline_s; });
      break;
    case StagingPolicy::kPriorityFirst:
      by([](const StagingRequest& r) {
        return std::make_pair(-r.priority, r.deadline_s);
      });
      break;
    case StagingPolicy::kWeightedSlack:
      by([](const StagingRequest& r) { return r.deadline_s / r.priority; });
      break;
  }

  StagingResult result;
  result.outcomes.resize(requests.size());
  double arrival_total = 0.0;
  std::size_t reachable = 0;

  for (const std::size_t index : order) {
    const StagingRequest& request = requests[index];
    const DataItem& item = items[request.item];
    Copies& copy_state = copies[request.item];

    StagingOutcome outcome;
    outcome.request_index = index;
    outcome.route = graph.earliest_arrival(
        copy_state.nodes, copy_state.available_s, request.destination,
        item.bytes);
    outcome.arrival_s = outcome.route.arrival_s;

    if (outcome.route.reachable()) {
      graph.reserve(outcome.route);
      // Staging: the destination and every intermediate site now hold a
      // copy that later requests can be served from.
      for (const Route::Hop& hop : outcome.route.hops) {
        copy_state.nodes.push_back(graph.link(hop.link_index).to);
        copy_state.available_s.push_back(hop.arrive_s);
      }
      arrival_total += outcome.arrival_s;
      ++reachable;
      outcome.satisfied = outcome.arrival_s <= request.deadline_s;
    }
    if (outcome.satisfied) {
      ++result.satisfied_count;
      result.satisfied_priority_value += request.priority;
    }
    result.outcomes[index] = std::move(outcome);
  }

  result.mean_arrival_s =
      reachable == 0 ? 0.0 : arrival_total / static_cast<double>(reachable);
  return result;
}

}  // namespace hcs
