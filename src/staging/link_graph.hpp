// Link-level network graph for wide-area data staging.
//
// The paper's §6.4 points at the BADD data-staging problem ([24], Tan et
// al.): data items at source sites must reach requester sites over a
// multi-hop network, by their deadlines. Unlike the application-level
// end-to-end model of §3.2, staging works at the *link* level: a message
// is forwarded store-and-forward through intermediate sites, each link
// carries one transfer at a time, and the routing choice matters.
//
// LinkGraph holds the topology and per-link performance and answers
// earliest-arrival queries: given data available at a set of source
// nodes (possibly at different times) and the current reservation state
// of every link, when can the data reach a destination, and along which
// path? The query is a time-dependent Dijkstra; it is exact because
// departures are FIFO (waiting for a link never helps).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "netmodel/link_params.hpp"

namespace hcs {

/// One directed link of the staging network.
struct Link {
  std::size_t from = 0;
  std::size_t to = 0;
  LinkParams params;
};

/// Earliest-arrival route for one item: hops in travel order, with the
/// computed per-hop times under the reservation state at query time.
struct Route {
  /// Hop k moves the data over links_[hop_links[k]], departing and
  /// arriving at the recorded times.
  struct Hop {
    std::size_t link_index;
    double depart_s;
    double arrive_s;
  };
  std::vector<Hop> hops;
  std::size_t source = 0;       ///< the chosen source node
  std::size_t destination = 0;
  double arrival_s = std::numeric_limits<double>::infinity();

  [[nodiscard]] bool reachable() const {
    return arrival_s != std::numeric_limits<double>::infinity();
  }
};

/// A directed multigraph of sites and links, with per-link reservation
/// ("next free") times that staging schedules mutate.
class LinkGraph {
 public:
  explicit LinkGraph(std::size_t node_count);

  /// Adds a directed link; returns its index.
  std::size_t add_link(std::size_t from, std::size_t to, LinkParams params);

  /// Adds a pair of opposite directed links with the same parameters.
  void add_bidirectional(std::size_t a, std::size_t b, LinkParams params);

  [[nodiscard]] std::size_t node_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }
  [[nodiscard]] const Link& link(std::size_t index) const {
    return links_.at(index);
  }

  /// Time at which link `index` is next free.
  [[nodiscard]] double link_free_at(std::size_t index) const {
    return link_free_.at(index);
  }

  /// Earliest arrival of a `bytes`-sized item at `destination`, given the
  /// item is available at each `sources[k]` node from time
  /// `available_s[k]` on (the two vectors correspond). Honors current
  /// link reservations; does not modify them.
  [[nodiscard]] Route earliest_arrival(const std::vector<std::size_t>& sources,
                                       const std::vector<double>& available_s,
                                       std::size_t destination,
                                       std::uint64_t bytes) const;

  /// Marks every link of `route` busy for its transfer interval.
  void reserve(const Route& route);

  /// Clears all reservations (new scheduling run).
  void reset_reservations();

 private:
  std::vector<Link> links_;
  std::vector<double> link_free_;
  std::vector<std::vector<std::size_t>> adjacency_;  ///< node -> link indices
};

}  // namespace hcs
