#include "staging/link_graph.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace hcs {

LinkGraph::LinkGraph(std::size_t node_count) : adjacency_(node_count) {
  if (node_count == 0) throw InputError("LinkGraph: zero nodes");
}

std::size_t LinkGraph::add_link(std::size_t from, std::size_t to,
                                LinkParams params) {
  if (from >= node_count() || to >= node_count())
    throw InputError("LinkGraph: endpoint out of range");
  if (from == to) throw InputError("LinkGraph: self-loop");
  if (params.bandwidth_Bps <= 0.0 || params.startup_s < 0.0)
    throw InputError("LinkGraph: invalid link parameters");
  links_.push_back({from, to, params});
  link_free_.push_back(0.0);
  adjacency_[from].push_back(links_.size() - 1);
  return links_.size() - 1;
}

void LinkGraph::add_bidirectional(std::size_t a, std::size_t b,
                                  LinkParams params) {
  (void)add_link(a, b, params);
  (void)add_link(b, a, params);
}

Route LinkGraph::earliest_arrival(const std::vector<std::size_t>& sources,
                                  const std::vector<double>& available_s,
                                  std::size_t destination,
                                  std::uint64_t bytes) const {
  if (sources.empty() || sources.size() != available_s.size())
    throw InputError("earliest_arrival: sources/availability mismatch");
  check(destination < node_count(), "earliest_arrival: destination out of range");

  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr std::size_t kNoLink = static_cast<std::size_t>(-1);
  std::vector<double> arrival(node_count(), kInf);
  std::vector<std::size_t> via_link(node_count(), kNoLink);
  std::vector<std::size_t> via_source(node_count(), 0);

  using Entry = std::pair<double, std::size_t>;  // arrival time, node
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  for (std::size_t k = 0; k < sources.size(); ++k) {
    const std::size_t node = sources[k];
    check(node < node_count(), "earliest_arrival: source out of range");
    if (available_s[k] < arrival[node]) {
      arrival[node] = available_s[k];
      via_source[node] = node;
      frontier.push({available_s[k], node});
    }
  }

  while (!frontier.empty()) {
    const auto [time, node] = frontier.top();
    frontier.pop();
    if (time > arrival[node]) continue;  // stale entry
    if (node == destination) break;
    for (const std::size_t index : adjacency_[node]) {
      const Link& edge = links_[index];
      const double depart = std::max(time, link_free_[index]);
      const double arrive = depart + edge.params.transfer_time(bytes);
      if (arrive < arrival[edge.to]) {
        arrival[edge.to] = arrive;
        via_link[edge.to] = index;
        via_source[edge.to] = via_source[node];
        frontier.push({arrive, edge.to});
      }
    }
  }

  Route route;
  route.destination = destination;
  route.arrival_s = arrival[destination];
  if (!route.reachable()) return route;
  route.source = via_source[destination];

  // Reconstruct hops backwards, then recompute forward times (the stored
  // arrivals already reflect reservations; recomputing documents the
  // per-hop departure explicitly).
  std::vector<std::size_t> reversed;
  for (std::size_t node = destination; via_link[node] != kNoLink;
       node = links_[via_link[node]].from)
    reversed.push_back(via_link[node]);
  std::reverse(reversed.begin(), reversed.end());

  double clock = arrival[route.source];
  for (const std::size_t index : reversed) {
    const Link& edge = links_[index];
    const double depart = std::max(clock, link_free_[index]);
    const double arrive = depart + edge.params.transfer_time(bytes);
    route.hops.push_back({index, depart, arrive});
    clock = arrive;
  }
  check(route.hops.empty() || std::abs(clock - route.arrival_s) < 1e-9,
        "earliest_arrival: path reconstruction mismatch");
  return route;
}

void LinkGraph::reserve(const Route& route) {
  for (const Route::Hop& hop : route.hops) {
    check(hop.link_index < links_.size(), "reserve: link out of range");
    link_free_[hop.link_index] =
        std::max(link_free_[hop.link_index], hop.arrive_s);
  }
}

void LinkGraph::reset_reservations() {
  std::fill(link_free_.begin(), link_free_.end(), 0.0);
}

}  // namespace hcs
