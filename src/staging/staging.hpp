// The BADD data-staging problem (§6.4, ref [24]).
//
// Data items reside at source sites; each request names an item, a
// destination site, a real-time deadline, and a priority. A scheduler
// routes items over the link graph (store-and-forward, links serialize),
// sequencing contending transfers "based on their respective deadlines
// and priorities" (§6.4). Copies created at intermediate sites are
// retained and can serve later requests for the same item — the staging
// effect that gives the problem its name.
//
// The scheduler here is the greedy reservation heuristic of the Tan et
// al. line of work: process requests in a policy-determined order; for
// each, find the earliest-arrival route from any current copy of the
// item (a multiple-source shortest-path computation, §2's description of
// [24]); reserve the route's links; record success or a deadline miss.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "staging/link_graph.hpp"

namespace hcs {

/// A data item: its size and the sites that initially hold a copy.
struct DataItem {
  std::uint64_t bytes = 0;
  std::vector<std::size_t> initial_sources;
};

/// One delivery request.
struct StagingRequest {
  std::size_t item = 0;         ///< index into the item list
  std::size_t destination = 0;  ///< requester site
  double deadline_s = std::numeric_limits<double>::infinity();
  double priority = 1.0;        ///< larger = more important
};

/// Order in which contending requests claim links.
enum class StagingPolicy {
  kFifo,           ///< input order — the unaware control
  kEdf,            ///< earliest deadline first
  kPriorityFirst,  ///< highest priority, deadline as tie-break
  kWeightedSlack,  ///< smallest deadline/priority ratio first
};

[[nodiscard]] std::string_view staging_policy_name(StagingPolicy policy);

/// Outcome for one request.
struct StagingOutcome {
  std::size_t request_index = 0;
  Route route;            ///< empty hops = served by a local copy
  double arrival_s = 0.0;
  bool satisfied = false; ///< arrived at or before the deadline
};

/// Aggregate result of a staging run.
struct StagingResult {
  std::vector<StagingOutcome> outcomes;  ///< one per request, input order
  std::size_t satisfied_count = 0;
  double satisfied_priority_value = 0.0;  ///< sum of priorities of on-time requests
  double mean_arrival_s = 0.0;            ///< over reachable requests
};

/// Runs the staging heuristic. `graph` reservations are reset at entry
/// and reflect the final schedule at exit. Unreachable destinations count
/// as unsatisfied with infinite arrival.
[[nodiscard]] StagingResult stage_data(LinkGraph& graph,
                                       const std::vector<DataItem>& items,
                                       const std::vector<StagingRequest>& requests,
                                       StagingPolicy policy);

}  // namespace hcs
