// Matching decomposition of a communication matrix.
//
// The paper's matching-based scheduler (§4.3) partitions the P x P
// communication events into P contention-free steps: build the complete
// bipartite graph with communication times as edge weights, repeatedly
// extract a maximum (or minimum) weight complete matching, and delete its
// edges. Each matching is a permutation of the processors, i.e. a valid
// communication step with no sender or receiver appearing twice.
//
// Deleting a perfect matching from K_{P,P} leaves a (P-k)-regular
// bipartite graph, which by Hall's theorem always contains another perfect
// matching, so the decomposition always completes with exactly P steps.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/lap.hpp"
#include "util/matrix.hpp"

namespace hcs {

/// Whether each extracted matching maximizes or minimizes total weight.
enum class MatchingObjective { kMaxWeight, kMinWeight };

/// Decomposes an n x n weight matrix into n permutations, each edge used
/// exactly once across all permutations. Permutation k maps each left
/// vertex (sender) to its matched right vertex (receiver) in step k.
///
/// Matchings are extracted best-first under `objective`; deleted edges are
/// excluded from later matchings. The n successive LAP solves run through
/// one warm-started `LapSolver` workspace, so steps 2..n re-solve
/// incrementally from the previous step's dual potentials instead of from
/// scratch.
[[nodiscard]] std::vector<std::vector<std::size_t>> decompose_into_matchings(
    const Matrix<double>& weights, MatchingObjective objective);

/// As above, but reusing a caller-owned solver workspace — the form hot
/// paths (adaptive re-scheduling) should use: repeated decompositions
/// allocate nothing beyond the result vectors once the workspace has
/// grown to the largest P seen.
[[nodiscard]] std::vector<std::vector<std::size_t>> decompose_into_matchings(
    const Matrix<double>& weights, MatchingObjective objective,
    LapSolver& solver);

/// Checks that `matchings` is a valid decomposition of an n x n complete
/// bipartite graph: n permutations jointly covering every (row, col) pair
/// exactly once.
[[nodiscard]] bool is_valid_decomposition(
    std::size_t n, const std::vector<std::vector<std::size_t>>& matchings);

}  // namespace hcs
