// Bertsekas auction algorithm for the assignment problem.
//
// An independent second solver used to cross-validate the shortest-
// augmenting-path LAP implementation (graph/lap.hpp): the two algorithms
// share no code and approach optimality from different directions
// (primal-dual path augmentation vs. price-raising auctions), so agreeing
// answers on random instances give high confidence in both.
//
// With bidding increment epsilon, the auction terminates with an
// assignment whose cost is within n * epsilon of optimal; epsilon-scaling
// drives the increment down geometrically for speed.
#pragma once

#include "graph/lap.hpp"
#include "util/matrix.hpp"

namespace hcs {

/// Options controlling the auction.
struct AuctionOptions {
  /// Final bidding increment; the result is within n * final_epsilon of
  /// the optimal cost.
  double final_epsilon = 1e-9;
  /// Scaling factor between epsilon phases (> 1).
  double scaling = 5.0;
};

/// Maximum-cost complete assignment via forward auction with
/// epsilon-scaling. Throws InputError on non-square or empty input.
[[nodiscard]] Assignment solve_auction_max(const Matrix<double>& cost,
                                           const AuctionOptions& options = {});

/// Minimum-cost variant (auction on negated costs).
[[nodiscard]] Assignment solve_auction_min(const Matrix<double>& cost,
                                           const AuctionOptions& options = {});

}  // namespace hcs
