#include "graph/auction.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace hcs {
namespace {

constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

/// One epsilon phase of the forward auction: repeatedly let an unassigned
/// person bid until everyone is assigned. `prices` persists across phases.
void auction_phase(const Matrix<double>& value, double epsilon,
                   std::vector<double>& prices,
                   std::vector<std::size_t>& person_to_object,
                   std::vector<std::size_t>& object_to_person) {
  const std::size_t n = value.rows();
  std::fill(person_to_object.begin(), person_to_object.end(), kUnassigned);
  std::fill(object_to_person.begin(), object_to_person.end(), kUnassigned);

  std::vector<std::size_t> unassigned(n);
  for (std::size_t i = 0; i < n; ++i) unassigned[i] = i;

  while (!unassigned.empty()) {
    const std::size_t person = unassigned.back();
    unassigned.pop_back();

    // Find the best and second-best net value for this person.
    double best = -std::numeric_limits<double>::infinity();
    double second = -std::numeric_limits<double>::infinity();
    std::size_t best_object = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const double net = value(person, j) - prices[j];
      if (net > best) {
        second = best;
        best = net;
        best_object = j;
      } else if (net > second) {
        second = net;
      }
    }
    // n == 1 has no second-best; bid the minimum increment.
    const double increment =
        (second == -std::numeric_limits<double>::infinity())
            ? epsilon
            : best - second + epsilon;
    prices[best_object] += increment;

    const std::size_t displaced = object_to_person[best_object];
    object_to_person[best_object] = person;
    person_to_object[person] = best_object;
    if (displaced != kUnassigned) {
      person_to_object[displaced] = kUnassigned;
      unassigned.push_back(displaced);
    }
  }
}

}  // namespace

Assignment solve_auction_max(const Matrix<double>& cost,
                             const AuctionOptions& options) {
  if (!cost.square() || cost.empty())
    throw InputError("solve_auction_max: cost matrix must be square and non-empty");
  if (options.final_epsilon <= 0.0 || options.scaling <= 1.0)
    throw InputError("solve_auction_max: bad options");
  const std::size_t n = cost.rows();

  // Start epsilon at the cost spread (a standard choice) and scale down.
  double spread = 0.0;
  cost.for_each([&](std::size_t, std::size_t, const double& c) {
    spread = std::max(spread, std::abs(c));
  });
  double epsilon = std::max(spread, options.final_epsilon);

  std::vector<double> prices(n, 0.0);
  std::vector<std::size_t> person_to_object(n, kUnassigned);
  std::vector<std::size_t> object_to_person(n, kUnassigned);

  for (;;) {
    auction_phase(cost, epsilon, prices, person_to_object, object_to_person);
    if (epsilon <= options.final_epsilon) break;
    epsilon = std::max(options.final_epsilon, epsilon / options.scaling);
  }

  Assignment result;
  result.row_to_col = person_to_object;
  result.cost = assignment_cost(cost, result.row_to_col);
  return result;
}

Assignment solve_auction_min(const Matrix<double>& cost,
                             const AuctionOptions& options) {
  Assignment result =
      solve_auction_max(cost.map([](double c) { return -c; }), options);
  result.cost = assignment_cost(cost, result.row_to_col);
  return result;
}

}  // namespace hcs
