#include "graph/matching.hpp"

#include <cmath>

#include "graph/lap.hpp"
#include "util/error.hpp"

namespace hcs {
namespace {

// Sentinel cost for deleted edges. Far outside any real communication
// time (seconds-scale values), yet small enough that dual-potential
// arithmetic keeps full precision.
constexpr double kDeleted = 1e9;

}  // namespace

std::vector<std::vector<std::size_t>> decompose_into_matchings(
    const Matrix<double>& weights, MatchingObjective objective) {
  if (!weights.square() || weights.empty())
    throw InputError("decompose_into_matchings: weights must be square and non-empty");
  weights.for_each([](std::size_t, std::size_t, const double& w) {
    if (!(std::abs(w) < kDeleted / 2))
      throw InputError("decompose_into_matchings: weight magnitude too large");
  });

  const std::size_t n = weights.rows();
  // Deleted edges get a cost that the optimizer will always avoid when a
  // deletion-free perfect matching exists — which it always does (Hall).
  const double avoid =
      objective == MatchingObjective::kMaxWeight ? -kDeleted : kDeleted;
  Matrix<double> working = weights;

  std::vector<std::vector<std::size_t>> matchings;
  matchings.reserve(n);
  for (std::size_t step = 0; step < n; ++step) {
    const Assignment assignment = objective == MatchingObjective::kMaxWeight
                                      ? solve_lap_max(working)
                                      : solve_lap_min(working);
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t c = assignment.row_to_col[r];
      check(working(r, c) != avoid,
            "decompose_into_matchings: optimizer chose a deleted edge");
      working(r, c) = avoid;
    }
    matchings.push_back(assignment.row_to_col);
  }
  return matchings;
}

bool is_valid_decomposition(
    std::size_t n, const std::vector<std::vector<std::size_t>>& matchings) {
  if (matchings.size() != n) return false;
  Matrix<int> covered(n, n, 0);
  for (const auto& matching : matchings) {
    if (!is_permutation(matching) || matching.size() != n) return false;
    for (std::size_t r = 0; r < n; ++r) {
      if (covered(r, matching[r]) != 0) return false;
      covered(r, matching[r]) = 1;
    }
  }
  return true;
}

}  // namespace hcs
