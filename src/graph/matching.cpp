#include "graph/matching.hpp"

#include <cmath>

#include "graph/lap.hpp"
#include "util/error.hpp"

namespace hcs {

std::vector<std::vector<std::size_t>> decompose_into_matchings(
    const Matrix<double>& weights, MatchingObjective objective) {
  LapSolver solver;
  return decompose_into_matchings(weights, objective, solver);
}

std::vector<std::vector<std::size_t>> decompose_into_matchings(
    const Matrix<double>& weights, MatchingObjective objective,
    LapSolver& solver) {
  if (!weights.square() || weights.empty())
    throw InputError("decompose_into_matchings: weights must be square and non-empty");
  // The solver's deleted-edge sentinel must dominate any real edge sum;
  // seconds-scale communication times clear this by orders of magnitude.
  weights.for_each([](std::size_t, std::size_t, const double& w) {
    if (!(std::abs(w) < LapSolver::kDeletedCost / 2))
      throw InputError("decompose_into_matchings: weight magnitude too large");
  });

  const std::size_t n = weights.rows();
  solver.load(weights, objective == MatchingObjective::kMaxWeight
                           ? LapObjective::kMaximize
                           : LapObjective::kMinimize);

  std::vector<std::vector<std::size_t>> matchings;
  matchings.reserve(n);
  for (std::size_t step = 0; step < n; ++step) {
    // Cold solve on step 0, warm-started from the previous step's duals
    // afterwards. Deleting a perfect matching keeps the remaining graph
    // regular, so a deletion-free perfect matching always exists (Hall)
    // and the optimizer never needs a deleted edge.
    Assignment assignment = solver.solve();
    for (std::size_t r = 0; r < n; ++r) {
      const std::size_t c = assignment.row_to_col[r];
      check(!solver.deleted(r, c),
            "decompose_into_matchings: optimizer chose a deleted edge");
      solver.mark_deleted(r, c);
    }
    matchings.push_back(std::move(assignment.row_to_col));
  }
  return matchings;
}

bool is_valid_decomposition(
    std::size_t n, const std::vector<std::vector<std::size_t>>& matchings) {
  if (matchings.size() != n) return false;
  Matrix<int> covered(n, n, 0);
  for (const auto& matching : matchings) {
    if (!is_permutation(matching) || matching.size() != n) return false;
    for (std::size_t r = 0; r < n; ++r) {
      if (covered(r, matching[r]) != 0) return false;
      covered(r, matching[r]) = 1;
    }
  }
  return true;
}

}  // namespace hcs
