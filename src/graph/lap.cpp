#include "graph/lap.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace hcs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

void LapSolver::load(const Matrix<double>& weights, LapObjective objective) {
  if (!weights.square() || weights.empty())
    throw InputError("LapSolver: cost matrix must be square and non-empty");
  n_ = weights.rows();
  sign_ = objective == LapObjective::kMaximize ? -1.0 : 1.0;

  cost_.resize(n_ * n_);
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t c = 0; c < n_; ++c)
      cost_[r * n_ + c] = sign_ * weights.unchecked(r, c);
  deleted_.assign(n_ * n_, 0);

  u_.assign(n_, 0.0);
  v_.assign(n_, 0.0);
  col_to_row_.assign(n_, 0);
  predecessor_.assign(n_, 0);
  scanned_cols_.resize(n_);
  dist_.resize(n_);
  visited_.resize(n_);
}

void LapSolver::mark_deleted(std::size_t r, std::size_t c) {
  check(r < n_ && c < n_, "LapSolver: deleted edge out of range");
  deleted_[r * n_ + c] = 1;
  // In effective (minimizing) space the sentinel is always +kDeletedCost,
  // which only raises the edge's cost — the persistent duals stay
  // feasible, keeping warm-started solves exact.
  cost_[r * n_ + c] = kDeletedCost;
}

bool LapSolver::deleted(std::size_t r, std::size_t c) const {
  check(r < n_ && c < n_, "LapSolver: deleted edge out of range");
  return deleted_[r * n_ + c] != 0;
}

Assignment LapSolver::solve() {
  if (n_ == 0) throw InputError("LapSolver: solve before load");
  const std::size_t n = n_;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // Shortest augmenting path with dual potentials (u on rows, v on
  // columns), in the deferred-update (LAPJV-style) form: dist_ holds
  // absolute path distances in reduced-cost space, and the duals are
  // updated once per augmentation instead of once per Dijkstra step —
  // the selection sequence is exactly the classic per-step-delta scan's,
  // just without its O(n) bookkeeping per visited column. The duals
  // carry over from the previous solve (warm start); the assignment does
  // not — deletions may have removed matched edges, so every row is
  // re-augmented, just against already-useful prices that keep the
  // augmenting paths short.
  std::fill(col_to_row_.begin(), col_to_row_.end(), kNone);

  for (std::size_t cur = 0; cur < n; ++cur) {
    std::fill(dist_.begin(), dist_.end(), kInf);
    std::fill(visited_.begin(), visited_.end(), std::uint8_t{0});
    std::size_t scanned = 0;     // assigned columns pulled into the tree
    std::size_t i = cur;         // row whose edges are being relaxed
    std::size_t i_col = kNone;   // column through which `i` was reached
    double dist_i = 0.0;         // path distance to row `i`
    std::size_t sink = kNone;
    do {
      const double off = dist_i - u_[i];
      const double* cost_row = cost_.data() + i * n;
      double lowest = kInf;
      std::size_t j1 = kNone;
      for (std::size_t j = 0; j < n; ++j) {
        if (visited_[j]) continue;
        const double alt = off + cost_row[j] - v_[j];
        if (alt < dist_[j]) {
          dist_[j] = alt;
          predecessor_[j] = i_col;
        }
        if (dist_[j] < lowest) {
          lowest = dist_[j];
          j1 = j;
        }
      }
      check(lowest < kInf, "LapSolver: no augmenting path (non-finite costs?)");
      visited_[j1] = 1;
      dist_i = lowest;
      if (col_to_row_[j1] == kNone) {
        sink = j1;
      } else {
        i = col_to_row_[j1];
        i_col = j1;
        scanned_cols_[scanned++] = j1;
      }
    } while (sink == kNone);

    // Deferred dual update: one pass over the columns the search actually
    // scanned (few, once the warm duals price the graph well).
    const double dist_sink = dist_i;
    u_[cur] += dist_sink;
    for (std::size_t k = 0; k < scanned; ++k) {
      const std::size_t j = scanned_cols_[k];
      const double slack = dist_sink - dist_[j];
      u_[col_to_row_[j]] += slack;
      v_[j] -= slack;
    }

    // Augment along the alternating path back to `cur`.
    std::size_t j = sink;
    for (;;) {
      const std::size_t pj = predecessor_[j];
      if (pj == kNone) {
        col_to_row_[j] = cur;
        break;
      }
      col_to_row_[j] = col_to_row_[pj];
      j = pj;
    }
  }

  Assignment result;
  result.row_to_col.assign(n, 0);
  for (std::size_t j = 0; j < n; ++j) result.row_to_col[col_to_row_[j]] = j;
  // Effective costs summed in row order, then mapped back through the
  // sign flag. IEEE rounding is sign-symmetric, so for kMaximize this is
  // bit-identical to summing the original weights directly.
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r)
    total += cost_[r * n + result.row_to_col[r]];
  result.cost = sign_ * total;
  return result;
}

Assignment solve_lap_min(const Matrix<double>& cost) {
  if (!cost.square() || cost.empty())
    throw InputError("solve_lap_min: cost matrix must be square and non-empty");
  LapSolver solver;
  solver.load(cost, LapObjective::kMinimize);
  return solver.solve();
}

Assignment solve_lap_max(const Matrix<double>& cost) {
  if (!cost.square() || cost.empty())
    throw InputError("solve_lap_max: cost matrix must be square and non-empty");
  LapSolver solver;
  solver.load(cost, LapObjective::kMaximize);
  return solver.solve();
}

bool is_permutation(const std::vector<std::size_t>& row_to_col) {
  std::vector<bool> seen(row_to_col.size(), false);
  for (const std::size_t col : row_to_col) {
    if (col >= row_to_col.size() || seen[col]) return false;
    seen[col] = true;
  }
  return true;
}

double assignment_cost(const Matrix<double>& cost,
                       const std::vector<std::size_t>& row_to_col) {
  check(row_to_col.size() == cost.rows(), "assignment_cost: size mismatch");
  double total = 0.0;
  for (std::size_t r = 0; r < row_to_col.size(); ++r)
    total += cost(r, row_to_col[r]);
  return total;
}

}  // namespace hcs
