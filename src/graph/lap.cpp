#include "graph/lap.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/simd_argmin.hpp"

namespace hcs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Below this size the vector pass's fixed 64-lane blocks waste more work
// than the scalar loop does in total (measured crossover between n=16 and
// n=32 on the bench preset); both paths select identical columns, so the
// threshold is purely a performance choice.
constexpr std::size_t kSimdMinSize = 32;

#if HCS_SIMD_ARGMIN_X86

// One vectorized Dijkstra step: relax every unvisited column against row
// `off` (alt = (off + cost) - v, the scalar expression's association),
// then pick the unvisited column with the smallest distance. Bit-identical
// to the scalar pass: the relaxations are elementwise IEEE ops, the
// compares are strict, and ties go to the lowest index — and because each
// dist_[j] reaches its pass-final value independently, splitting relax
// and argmin into two phases selects the same column as the scalar
// fused scan.
__attribute__((target("avx512f,avx512dq"))) simd::MinLoc relax_and_pick(
    const double* cost_row, const double* v, double* dist, std::size_t* pred,
    const std::uint64_t* unvisited, std::size_t words, double off,
    std::size_t i_col) {
  const __m512d off_v = _mm512_set1_pd(off);
  const __m512i pred_v = _mm512_set1_epi64(static_cast<long long>(i_col));
  const std::size_t blocks = words * 8;
  for (std::size_t b = 0; b < blocks; ++b) {
    const auto k =
        static_cast<__mmask8>(unvisited[b >> 3] >> (8 * (b & 7)));
    if (k == 0) continue;
    const __m512d alt = _mm512_sub_pd(
        _mm512_add_pd(off_v, _mm512_loadu_pd(cost_row + 8 * b)),
        _mm512_loadu_pd(v + 8 * b));
    const __mmask8 better =
        _mm512_mask_cmp_pd_mask(k, alt, _mm512_loadu_pd(dist + 8 * b),
                                _CMP_LT_OQ);
    _mm512_mask_storeu_pd(dist + 8 * b, better, alt);
    _mm512_mask_storeu_epi64(pred + 8 * b, better, pred_v);
  }
  return simd::argmin_wide(dist, unvisited, words);
}

#endif  // HCS_SIMD_ARGMIN_X86

}  // namespace

void LapSolver::load(const Matrix<double>& weights, LapObjective objective) {
  if (!weights.square() || weights.empty())
    throw InputError("LapSolver: cost matrix must be square and non-empty");
  n_ = weights.rows();
  stride_ = (n_ + 63) / 64 * 64;
  sign_ = objective == LapObjective::kMaximize ? -1.0 : 1.0;

  // Padding columns carry +inf costs and are never unmasked, so they can
  // not win a relaxation or an argmin.
  cost_.assign(n_ * stride_, kInf);
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t c = 0; c < n_; ++c)
      cost_[r * stride_ + c] = sign_ * weights.unchecked(r, c);
  deleted_.assign(n_ * n_, 0);

  u_.assign(n_, 0.0);
  v_.assign(stride_, 0.0);
  col_to_row_.assign(n_, 0);
  predecessor_.assign(stride_, 0);
  scanned_cols_.resize(n_);
  dist_.resize(stride_);
  visited_.resize(n_);
  unvisited_words_.resize(stride_ / 64);
}

void LapSolver::mark_deleted(std::size_t r, std::size_t c) {
  check(r < n_ && c < n_, "LapSolver: deleted edge out of range");
  deleted_[r * n_ + c] = 1;
  // In effective (minimizing) space the sentinel is always +kDeletedCost,
  // which only raises the edge's cost — the persistent duals stay
  // feasible, keeping warm-started solves exact.
  cost_[r * stride_ + c] = kDeletedCost;
}

bool LapSolver::deleted(std::size_t r, std::size_t c) const {
  check(r < n_ && c < n_, "LapSolver: deleted edge out of range");
  return deleted_[r * n_ + c] != 0;
}

Assignment LapSolver::solve() {
  if (n_ == 0) throw InputError("LapSolver: solve before load");
  const std::size_t n = n_;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  // Shortest augmenting path with dual potentials (u on rows, v on
  // columns), in the deferred-update (LAPJV-style) form: dist_ holds
  // absolute path distances in reduced-cost space, and the duals are
  // updated once per augmentation instead of once per Dijkstra step —
  // the selection sequence is exactly the classic per-step-delta scan's,
  // just without its O(n) bookkeeping per visited column. The duals
  // carry over from the previous solve (warm start); the assignment does
  // not — deletions may have removed matched edges, so every row is
  // re-augmented, just against already-useful prices that keep the
  // augmenting paths short.
  std::fill(col_to_row_.begin(), col_to_row_.end(), kNone);

#if HCS_SIMD_ARGMIN_X86
  const bool use_simd = n >= kSimdMinSize && simd::has_avx512();
#else
  const bool use_simd = false;
#endif
  [[maybe_unused]] const std::size_t words = stride_ / 64;

  for (std::size_t cur = 0; cur < n; ++cur) {
    std::fill(dist_.begin(), dist_.end(), kInf);
    if (use_simd) {
      // All real columns unvisited; padding lanes stay masked off.
      std::fill(unvisited_words_.begin(), unvisited_words_.end(),
                ~std::uint64_t{0});
      if (n % 64 != 0)
        unvisited_words_[words - 1] = (std::uint64_t{1} << (n % 64)) - 1;
    } else {
      std::fill(visited_.begin(), visited_.end(), std::uint8_t{0});
    }
    std::size_t scanned = 0;     // assigned columns pulled into the tree
    std::size_t i = cur;         // row whose edges are being relaxed
    std::size_t i_col = kNone;   // column through which `i` was reached
    double dist_i = 0.0;         // path distance to row `i`
    std::size_t sink = kNone;
    do {
      const double off = dist_i - u_[i];
      const double* cost_row = cost_.data() + i * stride_;
      double lowest = kInf;
      std::size_t j1 = kNone;
#if HCS_SIMD_ARGMIN_X86
      if (use_simd) {
        const simd::MinLoc loc = relax_and_pick(
            cost_row, v_.data(), dist_.data(), predecessor_.data(),
            unvisited_words_.data(), words, off, i_col);
        lowest = loc.value;
        j1 = loc.index;
      } else
#endif
      {
        for (std::size_t j = 0; j < n; ++j) {
          if (visited_[j]) continue;
          const double alt = off + cost_row[j] - v_[j];
          if (alt < dist_[j]) {
            dist_[j] = alt;
            predecessor_[j] = i_col;
          }
          if (dist_[j] < lowest) {
            lowest = dist_[j];
            j1 = j;
          }
        }
      }
      check(lowest < kInf, "LapSolver: no augmenting path (non-finite costs?)");
      if (use_simd)
        unvisited_words_[j1 / 64] &= ~(std::uint64_t{1} << (j1 % 64));
      else
        visited_[j1] = 1;
      dist_i = lowest;
      if (col_to_row_[j1] == kNone) {
        sink = j1;
      } else {
        i = col_to_row_[j1];
        i_col = j1;
        scanned_cols_[scanned++] = j1;
      }
    } while (sink == kNone);

    // Deferred dual update: one pass over the columns the search actually
    // scanned (few, once the warm duals price the graph well).
    const double dist_sink = dist_i;
    u_[cur] += dist_sink;
    for (std::size_t k = 0; k < scanned; ++k) {
      const std::size_t j = scanned_cols_[k];
      const double slack = dist_sink - dist_[j];
      u_[col_to_row_[j]] += slack;
      v_[j] -= slack;
    }

    // Augment along the alternating path back to `cur`.
    std::size_t j = sink;
    for (;;) {
      const std::size_t pj = predecessor_[j];
      if (pj == kNone) {
        col_to_row_[j] = cur;
        break;
      }
      col_to_row_[j] = col_to_row_[pj];
      j = pj;
    }
  }

  Assignment result;
  result.row_to_col.assign(n, 0);
  for (std::size_t j = 0; j < n; ++j) result.row_to_col[col_to_row_[j]] = j;
  // Effective costs summed in row order, then mapped back through the
  // sign flag. IEEE rounding is sign-symmetric, so for kMaximize this is
  // bit-identical to summing the original weights directly.
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r)
    total += cost_[r * stride_ + result.row_to_col[r]];
  result.cost = sign_ * total;
  return result;
}

Assignment solve_lap_min(const Matrix<double>& cost) {
  if (!cost.square() || cost.empty())
    throw InputError("solve_lap_min: cost matrix must be square and non-empty");
  LapSolver solver;
  solver.load(cost, LapObjective::kMinimize);
  return solver.solve();
}

Assignment solve_lap_max(const Matrix<double>& cost) {
  if (!cost.square() || cost.empty())
    throw InputError("solve_lap_max: cost matrix must be square and non-empty");
  LapSolver solver;
  solver.load(cost, LapObjective::kMaximize);
  return solver.solve();
}

bool is_permutation(const std::vector<std::size_t>& row_to_col) {
  std::vector<bool> seen(row_to_col.size(), false);
  for (const std::size_t col : row_to_col) {
    if (col >= row_to_col.size() || seen[col]) return false;
    seen[col] = true;
  }
  return true;
}

double assignment_cost(const Matrix<double>& cost,
                       const std::vector<std::size_t>& row_to_col) {
  check(row_to_col.size() == cost.rows(), "assignment_cost: size mismatch");
  double total = 0.0;
  for (std::size_t r = 0; r < row_to_col.size(); ++r)
    total += cost(r, row_to_col[r]);
  return total;
}

}  // namespace hcs
