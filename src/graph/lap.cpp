#include "graph/lap.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace hcs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Assignment solve_lap_min(const Matrix<double>& cost) {
  if (!cost.square() || cost.empty())
    throw InputError("solve_lap_min: cost matrix must be square and non-empty");
  const std::size_t n = cost.rows();

  // Shortest augmenting path with dual potentials (u on rows, v on
  // columns). Rows are introduced one at a time; each introduction runs a
  // Dijkstra-like scan over columns, maintaining reduced costs
  // cost(i,j) - u[i] - v[j] >= 0 as an invariant. Indices are offset by
  // one so that slot 0 acts as the virtual "unassigned" column.
  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(n + 1, 0.0);
  std::vector<std::size_t> col_to_row(n + 1, 0);  // 0 = unassigned
  std::vector<std::size_t> predecessor(n + 1, 0);

  for (std::size_t row = 1; row <= n; ++row) {
    col_to_row[0] = row;
    std::size_t j0 = 0;
    std::vector<double> min_reduced(n + 1, kInf);
    std::vector<bool> visited(n + 1, false);
    do {
      visited[j0] = true;
      const std::size_t i0 = col_to_row[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (visited[j]) continue;
        const double reduced = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (reduced < min_reduced[j]) {
          min_reduced[j] = reduced;
          predecessor[j] = j0;
        }
        if (min_reduced[j] < delta) {
          delta = min_reduced[j];
          j1 = j;
        }
      }
      check(delta < kInf, "solve_lap_min: no augmenting path (non-finite costs?)");
      for (std::size_t j = 0; j <= n; ++j) {
        if (visited[j]) {
          u[col_to_row[j]] += delta;
          v[j] -= delta;
        } else {
          min_reduced[j] -= delta;
        }
      }
      j0 = j1;
    } while (col_to_row[j0] != 0);
    // Augment along the alternating path back to the virtual column.
    do {
      const std::size_t j1 = predecessor[j0];
      col_to_row[j0] = col_to_row[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  Assignment result;
  result.row_to_col.assign(n, 0);
  for (std::size_t j = 1; j <= n; ++j)
    result.row_to_col[col_to_row[j] - 1] = j - 1;
  result.cost = assignment_cost(cost, result.row_to_col);
  return result;
}

Assignment solve_lap_max(const Matrix<double>& cost) {
  Assignment result = solve_lap_min(cost.map([](double c) { return -c; }));
  result.cost = assignment_cost(cost, result.row_to_col);
  return result;
}

bool is_permutation(const std::vector<std::size_t>& row_to_col) {
  std::vector<bool> seen(row_to_col.size(), false);
  for (const std::size_t col : row_to_col) {
    if (col >= row_to_col.size() || seen[col]) return false;
    seen[col] = true;
  }
  return true;
}

double assignment_cost(const Matrix<double>& cost,
                       const std::vector<std::size_t>& row_to_col) {
  check(row_to_col.size() == cost.rows(), "assignment_cost: size mismatch");
  double total = 0.0;
  for (std::size_t r = 0; r < row_to_col.size(); ++r)
    total += cost(r, row_to_col[r]);
  return total;
}

}  // namespace hcs
