// Linear Assignment Problem solver.
//
// Finding a maximum (or minimum) weight complete matching in a weighted
// complete bipartite graph is exactly the linear assignment problem (paper
// §4.3: "This is identical to the linear assignment problem"). The paper
// used Roy Jonker's public-domain LAP program; this is a from-scratch
// implementation of the same shortest-augmenting-path family of
// algorithms (Jonker–Volgenant style), running in O(n^3).
//
// Two entry points:
//  - `solve_lap_min` / `solve_lap_max`: one-shot free functions.
//  - `LapSolver`: a reusable workspace for hot paths (the matching
//    schedulers re-solve P times per decomposition). It owns every
//    scratch buffer, handles the max objective with a sign flag instead
//    of a negated-matrix copy, tracks deleted edges internally, and
//    warm-starts successive solves from the previous solve's dual
//    potentials so incremental re-solves after edge deletions do far
//    less Dijkstra work than a from-scratch run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/matrix.hpp"

namespace hcs {

/// A complete assignment: `row_to_col[r]` is the column matched to row r,
/// and `cost` is the summed weight of the chosen entries.
struct Assignment {
  std::vector<std::size_t> row_to_col;
  double cost = 0.0;
};

/// Optimization direction for LapSolver.
enum class LapObjective { kMinimize, kMaximize };

/// Reusable LAP workspace: allocation-free solves after `load`, and
/// warm-started incremental re-solves after edge deletions.
///
/// Lifecycle: `load` a square weight matrix (copied once, sign-adjusted so
/// both objectives run the same minimizing kernel), then alternate
/// `solve` and `mark_deleted` calls. The first solve after `load` starts
/// from zero dual potentials and is bit-identical to the free functions;
/// later solves reuse the previous solve's duals. Deleting edges only
/// *raises* effective costs, so the previous duals stay feasible
/// (reduced costs remain >= 0) and each warm solve is still exactly
/// optimal — it just starts with a near-tight pricing of the graph and
/// augments in far fewer Dijkstra steps.
///
/// Not thread-safe: one solver per thread.
class LapSolver {
 public:
  /// Sentinel effective cost assigned to deleted edges. Far outside any
  /// real communication time (seconds-scale values), yet small enough
  /// that dual-potential arithmetic keeps full precision.
  static constexpr double kDeletedCost = 1e9;

  LapSolver() = default;

  /// Loads an n x n problem, replacing any previous one: copies the
  /// weights (negating via the sign flag for kMaximize), clears the
  /// deleted-edge mask, and resets the dual potentials so the next solve
  /// is a cold start. Throws InputError if `weights` is not square or is
  /// empty. Weights may be any finite doubles; callers that use
  /// `mark_deleted` must keep magnitudes below kDeletedCost / 2 so real
  /// edges can never tie the sentinel.
  void load(const Matrix<double>& weights, LapObjective objective);

  /// Marks edge (r, c) as deleted: it takes the sentinel cost and is
  /// avoided by every later solve whenever a deletion-free complete
  /// assignment exists. check-fails on out-of-range indices.
  void mark_deleted(std::size_t r, std::size_t c);

  /// True when (r, c) has been deleted since the last `load`.
  [[nodiscard]] bool deleted(std::size_t r, std::size_t c) const;

  /// Solves the current problem. Warm-starts from the previous solve's
  /// dual potentials (a cold start right after `load`). The returned
  /// cost is the true objective under the loaded weights — deleted edges,
  /// if chosen because no deletion-free assignment exists, contribute
  /// their sentinel cost. Throws InputError if nothing is loaded.
  [[nodiscard]] Assignment solve();

  /// Rows (== columns) of the loaded problem; 0 before the first `load`.
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

 private:
  std::size_t n_ = 0;
  // Row stride of cost_: n rounded up to a 64-lane multiple, so the
  // vectorized Dijkstra pass can run whole masked blocks with every lane
  // it loads in bounds (the util/simd_argmin.hpp layout contract).
  // Column-indexed scratch (v_, dist_, predecessor_) is padded to match.
  std::size_t stride_ = 0;
  double sign_ = 1.0;                  // +1 minimize, -1 maximize
  std::vector<double> cost_;           // effective costs, n rows of stride_
  std::vector<std::uint8_t> deleted_;  // deletion mask, row-major n x n
  // Dual potentials (u on rows, v on columns) persist across solves —
  // this is the warm start.
  std::vector<double> u_;
  std::vector<double> v_;
  // Per-solve scratch, allocated once in `load`. visited_ (bytes) drives
  // the scalar pass; unvisited_words_ is the same set as a bitmask for
  // the vector pass — only the active representation is maintained.
  std::vector<std::size_t> col_to_row_;
  std::vector<std::size_t> predecessor_;
  std::vector<std::size_t> scanned_cols_;
  std::vector<double> dist_;
  std::vector<std::uint8_t> visited_;
  std::vector<std::uint64_t> unvisited_words_;
};

/// Minimum-cost complete assignment of an n x n cost matrix in O(n^3)
/// via shortest augmenting paths with dual potentials.
///
/// Costs may be any finite doubles (negative values allowed). Throws
/// InputError if the matrix is not square or is empty.
[[nodiscard]] Assignment solve_lap_min(const Matrix<double>& cost);

/// Maximum-cost complete assignment (same kernel run on sign-flipped
/// costs; the returned `cost` is the true maximized sum).
[[nodiscard]] Assignment solve_lap_max(const Matrix<double>& cost);

/// True when `row_to_col` is a permutation of 0..n-1.
[[nodiscard]] bool is_permutation(const std::vector<std::size_t>& row_to_col);

/// Sum of cost(r, row_to_col[r]) over all rows — the objective value of an
/// assignment under `cost`.
[[nodiscard]] double assignment_cost(const Matrix<double>& cost,
                                     const std::vector<std::size_t>& row_to_col);

}  // namespace hcs
