// Linear Assignment Problem solver.
//
// Finding a maximum (or minimum) weight complete matching in a weighted
// complete bipartite graph is exactly the linear assignment problem (paper
// §4.3: "This is identical to the linear assignment problem"). The paper
// used Roy Jonker's public-domain LAP program; this is a from-scratch
// implementation of the same shortest-augmenting-path family of
// algorithms (Jonker–Volgenant style), running in O(n^3).
#pragma once

#include <cstddef>
#include <vector>

#include "util/matrix.hpp"

namespace hcs {

/// A complete assignment: `row_to_col[r]` is the column matched to row r,
/// and `cost` is the summed weight of the chosen entries.
struct Assignment {
  std::vector<std::size_t> row_to_col;
  double cost = 0.0;
};

/// Minimum-cost complete assignment of an n x n cost matrix in O(n^3)
/// via shortest augmenting paths with dual potentials.
///
/// Costs may be any finite doubles (negative values allowed). Throws
/// InputError if the matrix is not square or is empty.
[[nodiscard]] Assignment solve_lap_min(const Matrix<double>& cost);

/// Maximum-cost complete assignment (solved as min on negated costs; the
/// returned `cost` is the true maximized sum).
[[nodiscard]] Assignment solve_lap_max(const Matrix<double>& cost);

/// True when `row_to_col` is a permutation of 0..n-1.
[[nodiscard]] bool is_permutation(const std::vector<std::size_t>& row_to_col);

/// Sum of cost(r, row_to_col[r]) over all rows — the objective value of an
/// assignment under `cost`.
[[nodiscard]] double assignment_cost(const Matrix<double>& cost,
                                     const std::vector<std::size_t>& row_to_col);

}  // namespace hcs
