#include "trace/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <vector>

namespace hcs {
namespace {

/// Microseconds with fixed precision — deterministic across platforms for
/// the golden-file tests.
std::string microseconds(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", seconds * 1e6);
  return buffer;
}

/// The track a Chrome event is drawn on: the sender's port for
/// transmissions, the receiver's for receive-side activity.
std::uint32_t track_of(const TraceEvent& event) {
  switch (event.kind) {
    case TraceEventKind::kBufferDrain:
    case TraceEventKind::kReceiveGrant:
      return event.dst;
    default:
      return event.src;
  }
}

bool is_span(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSendEnd:
    case TraceEventKind::kBufferDrain:
    case TraceEventKind::kAttemptFailed:
    case TraceEventKind::kRelayHop:
      return true;
    default:
      return false;
  }
}

}  // namespace

void write_chrome_trace(std::ostream& out, const EventTrace& trace) {
  out << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  bool first = true;
  const auto separator = [&] {
    out << (first ? "\n" : ",\n");
    first = false;
  };

  // Thread-name metadata so Perfetto labels the tracks P0, P1, ...
  for (std::size_t p = 0; p < trace.processor_count(); ++p) {
    separator();
    out << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": "
        << p << ", \"args\": {\"name\": \"P" << p << "\"}}";
  }

  for (const TraceEvent& event : trace.events()) {
    // send-start instants duplicate the matching span's left edge; they
    // exist for the auditor, not for the picture.
    if (event.kind == TraceEventKind::kSendStart) continue;
    separator();
    const std::string_view kind = trace_event_kind_name(event.kind);
    out << "{\"name\": \"" << kind << ' ' << event.src << "->" << event.dst
        << "\", \"cat\": \"" << kind << "\", \"ph\": \"";
    if (is_span(event.kind)) {
      out << "X\", \"ts\": " << microseconds(event.t_s)
          << ", \"dur\": " << microseconds(event.t_end_s - event.t_s);
    } else {
      out << "i\", \"s\": \"t\", \"ts\": " << microseconds(event.t_s);
    }
    out << ", \"pid\": 0, \"tid\": " << track_of(event)
        << ", \"args\": {\"src\": " << event.src << ", \"dst\": " << event.dst
        << ", \"bytes\": " << event.bytes
        << ", \"attempt\": " << event.attempt << "}}";
  }
  out << "\n]\n}\n";
}

std::string render_trace_diagram(const EventTrace& trace, std::size_t rows) {
  const std::size_t n = trace.processor_count();
  const std::vector<TraceEvent> events = trace.events();
  if (rows == 0) rows = 1;

  double makespan = 0.0;
  for (const TraceEvent& event : events)
    makespan = std::max(makespan, event.t_end_s);

  // Same geometry as render_timing_diagram in core/schedule.cpp: one
  // column per sender, wide enough for ">dd|".
  const std::size_t label_width = n > 10 ? 5 : 4;
  std::vector<std::string> grid(rows, std::string(n * label_width, ' '));

  std::uint64_t retries = 0, give_ups = 0, checkpoints = 0, drains = 0;
  for (const TraceEvent& event : events) {
    switch (event.kind) {
      case TraceEventKind::kRetryScheduled: ++retries; continue;
      case TraceEventKind::kGiveUp: ++give_ups; continue;
      case TraceEventKind::kCheckpoint: ++checkpoints; continue;
      case TraceEventKind::kBufferDrain: ++drains; continue;
      default: break;
    }
    // Grid cells mark sender-port engagements: '>' a delivered transfer,
    // '~' a relay hop, '!' a failed attempt.
    char mark;
    switch (event.kind) {
      case TraceEventKind::kSendEnd: mark = '>'; break;
      case TraceEventKind::kRelayHop: mark = '~'; break;
      case TraceEventKind::kAttemptFailed: mark = '!'; break;
      default: continue;
    }
    if (makespan <= 0.0) break;
    auto row_of = [&](double t) {
      const double fraction = t / makespan;
      return std::min(
          rows - 1, static_cast<std::size_t>(fraction * static_cast<double>(rows)));
    };
    const std::size_t first = row_of(event.t_s);
    std::size_t last = row_of(std::nexttoward(event.t_end_s, 0.0));
    last = std::max(last, first);
    const std::size_t col =
        static_cast<std::size_t>(event.src) * label_width;
    for (std::size_t r = first; r <= last; ++r) {
      std::string cell = r == first ? std::to_string(event.dst) : "";
      cell.insert(cell.begin(), r == first ? mark : '|');
      if (cell.size() > label_width - 1) cell.resize(label_width - 1);
      for (std::size_t k = 0; k < cell.size(); ++k) grid[r][col + k] = cell[k];
    }
  }

  std::ostringstream out;
  out << "time";
  for (std::size_t p = 0; p < n; ++p) {
    std::string header = "P" + std::to_string(p);
    header.resize(label_width, ' ');
    out << (p == 0 ? "  " : "") << header;
  }
  out << '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    const double t =
        makespan * static_cast<double>(r) / static_cast<double>(rows);
    char time_label[16];
    std::snprintf(time_label, sizeof time_label, "%5.1f ", t);
    out << time_label << grid[r] << '\n';
  }

  // Fault and adaptive activity, when any: fault-free traces keep the
  // plain Figure-5 shape.
  std::ostringstream footer;
  if (retries > 0) footer << "retries: " << retries << "  ";
  if (give_ups > 0) footer << "give-ups: " << give_ups << "  ";
  if (checkpoints > 0) footer << "checkpoints: " << checkpoints << "  ";
  if (drains > 0) footer << "drains: " << drains << "  ";
  std::string footer_text = footer.str();
  if (!footer_text.empty()) {
    footer_text.pop_back();
    footer_text.pop_back();
    out << footer_text << '\n';
  }
  return out.str();
}

}  // namespace hcs
