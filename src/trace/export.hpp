// Trace exporters: Chrome trace_event JSON and ASCII timing diagrams.
//
// Two renderings of one EventTrace:
//  - write_chrome_trace emits the Chrome trace_event format (JSON object
//    form), loadable in chrome://tracing and Perfetto: one complete "X"
//    event per executed transfer on the sender's track, instants for
//    retries, give-ups, checkpoints, and grants. Times are exported in
//    microseconds, the format's unit.
//  - render_trace_diagram reproduces the paper's timing-diagram layout
//    (§3.3, Figures 5–8): one column per sender, time flowing downward,
//    each transfer labelled with its destination. Relay hops are marked
//    with '~' instead of '>'; a footer summarizes retries, give-ups, and
//    checkpoints when any occurred.
//
// Both renderings are deterministic byte-for-byte in the trace contents —
// the golden-file tests pin them.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace hcs {

/// Writes `trace` as Chrome trace_event JSON (object form, with thread
/// name metadata so tracks read "P0 send", "P1 send", ...).
void write_chrome_trace(std::ostream& out, const EventTrace& trace);

/// Renders `trace` as an ASCII timing diagram with `rows` vertical time
/// slices. Columns cover processors 0 .. trace.processor_count() - 1.
[[nodiscard]] std::string render_trace_diagram(const EventTrace& trace,
                                               std::size_t rows = 24);

}  // namespace hcs
