#include "trace/trace.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hcs {

std::string_view trace_event_kind_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSendStart: return "send-start";
    case TraceEventKind::kSendEnd: return "send";
    case TraceEventKind::kReceiveGrant: return "receive-grant";
    case TraceEventKind::kBufferDrain: return "buffer-drain";
    case TraceEventKind::kAttemptFailed: return "attempt-failed";
    case TraceEventKind::kRetryScheduled: return "retry-scheduled";
    case TraceEventKind::kGiveUp: return "give-up";
    case TraceEventKind::kRelayHop: return "relay-hop";
    case TraceEventKind::kCheckpoint: return "checkpoint";
    case TraceEventKind::kReschedule: return "reschedule";
    case TraceEventKind::kReplan: return "replan";
    case TraceEventKind::kReelect: return "reelect";
  }
  throw InputError("trace_event_kind_name: unknown kind");
}

EventTrace::EventTrace(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw InputError("EventTrace: capacity must be >= 1");
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void EventTrace::record(const TraceEvent& event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[head_] = event;
    head_ = (head_ + 1) % capacity_;
  }
  ++recorded_;
  max_proc_ = std::max({max_proc_, static_cast<std::size_t>(event.src) + 1,
                        static_cast<std::size_t>(event.dst) + 1});
}

void EventTrace::clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
  max_proc_ = 0;
}

std::size_t EventTrace::size() const noexcept { return ring_.size(); }

std::uint64_t EventTrace::dropped() const noexcept {
  return recorded_ - ring_.size();
}

std::vector<TraceEvent> EventTrace::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once wrapped, head_ points at the oldest entry.
  for (std::size_t k = 0; k < ring_.size(); ++k)
    out.push_back(ring_[(head_ + k) % ring_.size()]);
  return out;
}

}  // namespace hcs
