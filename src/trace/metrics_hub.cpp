#include "trace/metrics_hub.hpp"

namespace hcs {

MetricsHub::MetricsHub(std::size_t workers) {
  slots_.reserve(workers == 0 ? 1 : workers);
  for (std::size_t w = 0; w < (workers == 0 ? 1 : workers); ++w)
    slots_.push_back(std::make_unique<Slot>());
}

MetricsRegistry MetricsHub::scrape() const {
  MetricsRegistry merged;
  for (const auto& slot : slots_) {
    MetricsRegistry copy;
    {
      const std::lock_guard<std::mutex> lock(slot->mutex);
      copy = slot->registry;
    }
    merged.merge(copy);
  }
  return merged;
}

}  // namespace hcs
