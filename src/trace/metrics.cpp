#include "trace/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace hcs {
namespace {

/// Deterministic JSON number for a double: %.9g round-trips every value
/// the registry produces (sums of event times) and never emits locale- or
/// platform-styled output on the toolchains we build with.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  return buffer;
}

}  // namespace

void Histogram::observe(double value) noexcept {
  if (!(value >= 0.0) || !std::isfinite(value)) return;  // reject NaN/inf/neg
  std::size_t k = 0;
  if (value > 0.0) {
    const int exp = std::ilogb(value);
    const int shifted = exp - kMinExp;
    // ilogb(v) == e means 2^e <= v < 2^(e+1); bucket bounds are inclusive
    // above, so exact powers of two land one bucket lower.
    int idx = shifted + (std::exp2(exp) == value ? 0 : 1);
    if (idx < 0) idx = 0;
    if (idx >= static_cast<int>(kBuckets)) idx = kBuckets - 1;
    k = static_cast<std::size_t>(idx);
  }
  ++buckets_[k];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
}

double Histogram::bucket_bound(std::size_t k) {
  return std::exp2(static_cast<double>(kMinExp + static_cast<int>(k)));
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double scaled = q * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(scaled));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    seen += buckets_[k];
    if (seen >= rank) {
      const double bound = bucket_bound(k);
      return std::min(std::max(bound, min_), max_);
    }
  }
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0)
    throw InputError("MetricsRegistry: '" + name + "' is not a counter");
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  if (counters_.count(name) != 0 || histograms_.count(name) != 0)
    throw InputError("MetricsRegistry: '" + name + "' is not a gauge");
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  if (counters_.count(name) != 0 || gauges_.count(name) != 0)
    throw InputError("MetricsRegistry: '" + name + "' is not a histogram");
  return histograms_[name];
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counter(name).add(c.value());
  for (const auto& [name, g] : other.gauges_) gauge(name).set_max(g.value());
  for (const auto& [name, h] : other.histograms_) {
    Histogram& mine = histogram(name);
    for (std::size_t k = 0; k < Histogram::kBuckets; ++k)
      mine.buckets_[k] += h.buckets_[k];
    if (h.count_ > 0) {
      if (mine.count_ == 0) {
        mine.min_ = h.min_;
        mine.max_ = h.max_;
      } else {
        if (h.min_ < mine.min_) mine.min_ = h.min_;
        if (h.max_ > mine.max_) mine.max_ = h.max_;
      }
      mine.count_ += h.count_;
      mine.sum_ += h.sum_;
    }
  }
}

void MetricsRegistry::write_json(std::ostream& out) const {
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << c.value();
    first = false;
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": " << json_number(g.value());
    first = false;
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": "
        << h.count() << ", \"sum\": " << json_number(h.sum())
        << ", \"min\": " << json_number(h.min())
        << ", \"max\": " << json_number(h.max()) << ", \"buckets\": {";
    bool first_bucket = true;
    for (std::size_t k = 0; k < Histogram::kBuckets; ++k) {
      if (h.bucket(k) == 0) continue;
      out << (first_bucket ? "" : ", ") << "\"le_"
          << json_number(Histogram::bucket_bound(k)) << "\": " << h.bucket(k);
      first_bucket = false;
    }
    out << "}}";
    first = false;
  }
  out << (first ? "}\n" : "\n  }\n") << "}\n";
}

void MetricsRegistry::write_text(std::ostream& out) const {
  const auto text_name = [](const std::string& name) {
    std::string flat = name;
    for (char& c : flat)
      if (c == '.' || c == '-') c = '_';
    return flat;
  };
  for (const auto& [name, c] : counters_)
    out << text_name(name) << ' ' << c.value() << '\n';
  for (const auto& [name, g] : gauges_)
    out << text_name(name) << ' ' << json_number(g.value()) << '\n';
  for (const auto& [name, h] : histograms_) {
    const std::string flat = text_name(name);
    out << flat << "_count " << h.count() << '\n'
        << flat << "_sum " << json_number(h.sum()) << '\n'
        << flat << "_min " << json_number(h.min()) << '\n'
        << flat << "_max " << json_number(h.max()) << '\n'
        << flat << "_p50 " << json_number(h.quantile(0.5)) << '\n'
        << flat << "_p99 " << json_number(h.quantile(0.99)) << '\n';
  }
}

}  // namespace hcs
