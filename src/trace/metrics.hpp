// Metrics registry: named counters, gauges, and histograms.
//
// Complements the event trace with aggregate observability: how many
// events a run simulated, how often senders retried, how much port time
// sat idle, how large the warm workspaces grew. Metrics are cheap to
// update (a counter add is one integer increment on an already-resolved
// pointer), deterministic to serialize (names are emitted sorted), and
// carry no timestamps — the trace owns time, the registry owns totals.
//
// The registry hands out stable references: `registry.counter("x")`
// resolves the name once, and the returned Counter& stays valid for the
// registry's lifetime, so hot loops hoist the lookup out of the loop.
// Not thread-safe; parallel producers keep per-thread registries and
// merge() them afterwards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace hcs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written (or high-water, via set_max) scalar.
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  /// Keeps the maximum of the current and supplied values — the idiom for
  /// high-water marks (workspace footprints, worst-case completion).
  void set_max(double value) noexcept {
    if (value > value_) value_ = value;
  }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket log-scale histogram of non-negative samples.
///
/// Bucket k counts samples in (2^(k-1+kMinExp), 2^(k+kMinExp)]; bucket 0
/// additionally absorbs everything at or below its upper bound (including
/// zeros), the last bucket everything above. The power-of-two geometry
/// covers nanoseconds to hours in 64 buckets with no configuration and
/// bit-exact reproducibility.
class Histogram {
 public:
  static constexpr int kMinExp = -30;  ///< bucket 0 upper bound = 2^-30 s
  static constexpr std::size_t kBuckets = 64;

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] std::uint64_t bucket(std::size_t k) const {
    return buckets_[k];
  }
  /// Upper bound of bucket k (inclusive).
  [[nodiscard]] static double bucket_bound(std::size_t k);

  /// Bucket-resolution quantile estimate: the upper bound of the bucket
  /// containing the ceil(q * count)-th smallest sample, clamped to the
  /// exact observed [min, max]. Accurate to the power-of-two bucket
  /// geometry (within 2x) — what an admin scrape needs for p50/p99;
  /// clients wanting exact percentiles keep their own samples
  /// (util/stats.hpp quantile). q outside [0, 1] is clamped; an empty
  /// histogram reports 0.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  friend class MetricsRegistry;
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name -> metric map with deterministic JSON serialization.
class MetricsRegistry {
 public:
  /// Finds or creates the named metric. References stay valid for the
  /// registry's lifetime. A name holds exactly one metric kind; reusing
  /// it with a different kind throws InputError.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Folds `other` into this registry: counters add, gauges keep the
  /// maximum (high-water semantics), histograms merge bucket-wise.
  void merge(const MetricsRegistry& other);

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}, names sorted, non-empty histogram buckets
  /// only. Deterministic byte-for-byte for equal contents.
  void write_json(std::ostream& out) const;

  /// Prometheus-style line format, one metric per line: `name value` for
  /// counters and gauges, and `name_count/_sum/_min/_max/_p50/_p99` lines
  /// per histogram (quantiles at bucket resolution). Dots in names become
  /// underscores; names are emitted sorted, so output is deterministic
  /// byte-for-byte for equal contents. This is the admin endpoint's text
  /// scrape format.
  void write_text(std::ostream& out) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace hcs
