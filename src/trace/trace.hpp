// Structured event tracing — the paper's timing diagram, machine-readable.
//
// The paper's central debugging artifact is the timing diagram (§3.3,
// Figures 5–8): per-sender columns of communication events that make
// contention and idle time visible. This module captures the raw material
// for those diagrams at execution time: every simulator event (send
// start/end, receive grant, failed attempt, retry, relay hop, checkpoint)
// with ports, bytes, and model-assigned timestamps.
//
// Zero overhead when off. Hot-path producers (the simulator's run loops)
// are templated on a sink type satisfying the TraceSink concept and every
// record call sits behind `if constexpr (Sink::kEnabled)`, so the default
// NullTraceSink instantiation compiles to the exact code that existed
// before tracing — no branch, no indirect call, no std::function. The
// recording instantiation writes into an EventTrace, a fixed-capacity
// ring buffer that overwrites its oldest entries rather than allocating
// unboundedly (long fault sweeps stay O(capacity) in memory; the dropped
// count says when the window wrapped).
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace hcs {

/// What one trace record describes. Span kinds carry [t_s, t_end_s];
/// instant kinds have t_end_s == t_s.
enum class TraceEventKind : std::uint8_t {
  kSendStart,      ///< instant: a transmission attempt engages the sender
  kSendEnd,        ///< span: a delivered transfer, start to finish
  kReceiveGrant,   ///< instant: a parked sender is granted the receiver
  kBufferDrain,    ///< span: receiver-side processing of a buffered message
  kAttemptFailed,  ///< span: a failed attempt's port engagement
  kRetryScheduled, ///< instant: the sender will retry at t_s
  kGiveUp,         ///< instant: message abandoned as undeliverable
  kRelayHop,       ///< span: one executed store-and-forward hop
  kCheckpoint,     ///< instant: adaptive loop committed a prefix (attempt
                   ///< carries the 1-based round number)
  kReschedule,     ///< instant: a fresh schedule was computed for the
                   ///< remaining pairs
  kReplan,         ///< instant: failed traffic was requeued and re-planned
                   ///< on the degraded view (attempt carries the 1-based
                   ///< replan round)
  kReelect,        ///< instant: a cluster representative was replaced
                   ///< (src = old representative, dst = new)
};

/// Stable lower-case name of a kind ("send-start", "relay-hop", ...).
[[nodiscard]] std::string_view trace_event_kind_name(TraceEventKind kind);

/// One trace record. 40 bytes, trivially copyable; the ring buffer stores
/// these by value.
struct TraceEvent {
  double t_s = 0.0;        ///< start (spans) or occurrence time (instants)
  double t_end_s = 0.0;    ///< span end; equals t_s for instants
  std::uint64_t bytes = 0; ///< message size, when the producer knows it
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t attempt = 1;  ///< 1-based attempt / round number
  TraceEventKind kind = TraceEventKind::kSendStart;

  [[nodiscard]] bool operator==(const TraceEvent&) const = default;
};

/// Compile-time sink contract the simulator's run loops are templated on.
/// `kEnabled == false` lets producers drop record calls entirely via
/// `if constexpr`, which is what keeps the untraced path bit-identical to
/// the pre-tracing code.
template <class S>
concept TraceSink = requires(S sink, const TraceEvent& event) {
  { S::kEnabled } -> std::convertible_to<bool>;
  sink.record(event);
};

/// The default sink: records nothing, costs nothing.
struct NullTraceSink {
  static constexpr bool kEnabled = false;
  void record(const TraceEvent&) const noexcept {}
};

/// Ring-buffered trace recorder. Keeps the most recent `capacity` events
/// in record order; older events are overwritten and counted as dropped.
/// Not thread-safe — one trace per executing thread, like SimWorkspace.
class EventTrace {
 public:
  static constexpr bool kEnabled = true;

  /// Default capacity holds a P=64 total exchange several times over.
  explicit EventTrace(std::size_t capacity = 1 << 16);

  void record(const TraceEvent& event);

  /// Forgets all events (capacity is kept).
  void clear();

  /// Events currently retained (<= capacity()).
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total events ever recorded, including overwritten ones.
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  /// Events lost to ring wrap-around (recorded() - size()).
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Retained events, oldest first. Materializes a copy; exporters and
  /// the auditor consume this.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Smallest processor count covering every recorded src/dst (0 for an
  /// empty trace). Exporters use it to size diagrams.
  [[nodiscard]] std::size_t processor_count() const noexcept {
    return max_proc_;
  }

 private:
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< next write position once the ring is full
  std::uint64_t recorded_ = 0;
  std::size_t max_proc_ = 0;
};

}  // namespace hcs
