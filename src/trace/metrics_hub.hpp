// Concurrency wrapper over MetricsRegistry: per-worker registries,
// merged on scrape.
//
// MetricsRegistry is deliberately not thread-safe — a counter add is one
// integer increment, and the hot paths that record into it are
// single-threaded. A long-running server changes the picture: worker
// threads record continuously while an admin endpoint scrapes at any
// moment. The hub keeps the registry's cheap single-threaded recording
// model by giving every worker its own registry behind its own mutex:
// a worker takes only its own (uncontended) lock to record, and a scrape
// locks each slot in turn, copying and merge()-ing into one aggregate —
// the same per-kind merge semantics the parallel experiment sweeps use
// (counters add, gauges keep the max, histograms merge bucket-wise).
//
// Lock granularity is per record() call, not per metric: a worker batches
// all the metrics of one request under a single lock acquisition, so the
// per-request overhead is one uncontended lock/unlock pair. Contention
// only ever comes from a concurrent scrape of the same slot, which is
// rare (scrapes are seconds apart, requests are microseconds).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "trace/metrics.hpp"

namespace hcs {

/// Fixed set of per-worker MetricsRegistry slots with a merging scrape.
/// Safe for concurrent use: any number of threads may record into
/// distinct slots while others scrape. Two threads sharing one slot
/// serialize on that slot's mutex (correct, but defeats the point —
/// give each recording thread its own slot).
class MetricsHub {
 public:
  /// `workers` slots, ids 0 .. workers - 1. At least one slot is created.
  explicit MetricsHub(std::size_t workers);

  [[nodiscard]] std::size_t worker_count() const noexcept {
    return slots_.size();
  }

  /// Runs `fn(MetricsRegistry&)` under worker `w`'s lock. The registry
  /// reference is valid only inside the callback. Keep callbacks short —
  /// record, don't compute.
  template <typename Fn>
  void record(std::size_t w, Fn&& fn) {
    Slot& slot = *slots_.at(w);
    const std::lock_guard<std::mutex> lock(slot.mutex);
    fn(slot.registry);
  }

  /// Merged snapshot of every slot: locks each slot in ascending worker
  /// order, copying its registry, and folds the copies together with
  /// MetricsRegistry::merge. Slots are not locked simultaneously, so a
  /// scrape never stalls more than one worker at a time.
  [[nodiscard]] MetricsRegistry scrape() const;

 private:
  struct Slot {
    mutable std::mutex mutex;
    MetricsRegistry registry;
  };
  // unique_ptr slots: mutexes are neither movable nor copyable, and the
  // vector must not reallocate them out from under a recording thread.
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace hcs
