// ScheduleAuditor: machine-checkable replay of an event trace.
//
// The paper's model invariants (§3.2) — one send and one receive per
// node at a time, contending receives serialized — are what every
// scheduler and simulator in this repository promises. The auditor
// replays a recorded EventTrace and asserts those invariants on what
// actually executed, plus internal trace consistency (no time travel, no
// completion without a start) and agreement with the simulator's reported
// completion time. Golden-trace tests and the differential fuzz harness
// run every trace through it, so a model violation cannot hide inside a
// bit-identical-but-wrong pair of simulators.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace hcs {

/// What the auditor enforces.
struct AuditOptions {
  /// Enforce the base model's serialized receives: flight spans at one
  /// receiver must not overlap. Off for the §6.1 interleaved and buffered
  /// relaxations, where simultaneous in-flight receives are the model.
  bool serialized_receives = true;
  /// Slack for interval comparisons. The default 0 demands the exact
  /// arithmetic the simulators produce; corrupted or hand-built traces
  /// may need a tolerance.
  double tolerance = 0.0;
};

/// Outcome of one audit. Violations are human-readable diagnostics, one
/// per independent defect, each beginning with a stable category tag
/// ("overlapping-send:", "time-travel:", ...) tests can match on.
struct AuditReport {
  std::vector<std::string> violations;
  /// Completion time the trace implies (latest span end).
  double completion_s = 0.0;
  /// Delivered transfers seen (send spans + relay hops).
  std::size_t transfers = 0;

  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
  /// All violations joined with newlines ("" when ok()).
  [[nodiscard]] std::string summary() const;
};

/// Replays traces against the model invariants. Stateless apart from its
/// options; reusable across traces.
class ScheduleAuditor {
 public:
  explicit ScheduleAuditor(AuditOptions options = {});

  /// Audits internal consistency and port exclusivity.
  [[nodiscard]] AuditReport audit(const EventTrace& trace) const;

  /// Same, plus asserts the trace's completion time equals the
  /// simulator-reported one (within tolerance).
  [[nodiscard]] AuditReport audit(const EventTrace& trace,
                                  double expected_completion_s) const;

 private:
  AuditOptions options_;
};

}  // namespace hcs
