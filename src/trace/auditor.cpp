#include "trace/auditor.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <sstream>

namespace hcs {
namespace {

/// A port engagement extracted from the trace.
struct Span {
  double start = 0.0;
  double end = 0.0;
  std::size_t src = 0;
  std::size_t dst = 0;
};

std::string format_span(const Span& span) {
  std::ostringstream out;
  out << span.src << "->" << span.dst << " [" << span.start << ", "
      << span.end << ")";
  return out.str();
}

/// True when the event kind engages both ports for [t_s, t_end_s].
bool occupies_ports(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSendEnd:
    case TraceEventKind::kAttemptFailed:
    case TraceEventKind::kRelayHop:
      return true;
    default:
      return false;
  }
}

void check_port_overlaps(std::vector<Span>& spans, const char* tag,
                         const char* port, double tolerance,
                         std::vector<std::string>& violations) {
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return a.start < b.start || (a.start == b.start && a.end < b.end);
  });
  const Span* previous = nullptr;
  for (const Span& span : spans) {
    if (span.end - span.start <= tolerance) continue;  // zero-duration
    if (previous != nullptr && span.start < previous->end - tolerance) {
      const std::size_t node = port[0] == 's' ? span.src : span.dst;
      violations.push_back(std::string(tag) + ": node " +
                           std::to_string(node) + "'s " + port +
                           " port runs " + format_span(*previous) + " and " +
                           format_span(span) + " simultaneously");
    }
    previous = &span;
  }
}

}  // namespace

std::string AuditReport::summary() const {
  std::string out;
  for (const std::string& violation : violations) {
    if (!out.empty()) out += '\n';
    out += violation;
  }
  return out;
}

ScheduleAuditor::ScheduleAuditor(AuditOptions options) : options_(options) {}

AuditReport ScheduleAuditor::audit(const EventTrace& trace) const {
  AuditReport report;
  const double tol = options_.tolerance;

  if (trace.dropped() > 0)
    report.violations.push_back(
        "incomplete-trace: ring buffer dropped " +
        std::to_string(trace.dropped()) +
        " events; the audit window does not cover the run");

  const std::vector<TraceEvent> events = trace.events();
  const std::size_t n = trace.processor_count();

  // Per-sender outstanding send start, for start/completion pairing.
  std::vector<std::optional<TraceEvent>> outstanding(n);
  // Receive grants awaiting their transfer, per receiver.
  std::vector<std::optional<TraceEvent>> pending_grant(n);
  std::vector<std::vector<Span>> send_spans(n);
  std::vector<std::vector<Span>> recv_spans(n);
  std::vector<std::vector<Span>> drain_spans(n);

  for (const TraceEvent& event : events) {
    const bool is_span = occupies_ports(event.kind) ||
                         event.kind == TraceEventKind::kBufferDrain;
    if (event.t_s < -tol)
      report.violations.push_back(
          "negative-time: " + std::string(trace_event_kind_name(event.kind)) +
          " " + std::to_string(event.src) + "->" + std::to_string(event.dst) +
          " at t = " + std::to_string(event.t_s) + " precedes time zero");
    if (is_span && event.t_end_s < event.t_s - tol)
      report.violations.push_back(
          "time-travel: " + std::string(trace_event_kind_name(event.kind)) +
          " " + std::to_string(event.src) + "->" + std::to_string(event.dst) +
          " ends at " + std::to_string(event.t_end_s) +
          ", before it starts at " + std::to_string(event.t_s));

    switch (event.kind) {
      case TraceEventKind::kSendStart: {
        if (outstanding[event.src].has_value())
          report.violations.push_back(
              "concurrent-send-start: node " + std::to_string(event.src) +
              " starts a send to " + std::to_string(event.dst) + " at t = " +
              std::to_string(event.t_s) + " while its send to " +
              std::to_string(outstanding[event.src]->dst) +
              " is still unresolved");
        outstanding[event.src] = event;
        break;
      }
      case TraceEventKind::kSendEnd:
      case TraceEventKind::kAttemptFailed:
      case TraceEventKind::kRelayHop: {
        const std::optional<TraceEvent>& start = outstanding[event.src];
        if (!start.has_value() || start->dst != event.dst ||
            std::abs(start->t_s - event.t_s) > tol) {
          report.violations.push_back(
              "completion-before-start: " +
              std::string(trace_event_kind_name(event.kind)) + " " +
              std::to_string(event.src) + "->" + std::to_string(event.dst) +
              " at t = " + std::to_string(event.t_s) +
              " has no matching send-start");
        } else {
          outstanding[event.src].reset();
        }
        break;
      }
      case TraceEventKind::kReceiveGrant: {
        pending_grant[event.dst] = event;
        break;
      }
      default:
        break;
    }

    // A grant must be honoured by the very next engagement of that
    // receiver, at the grant's time and pair.
    if (occupies_ports(event.kind) && pending_grant[event.dst].has_value()) {
      const TraceEvent& grant = *pending_grant[event.dst];
      if (grant.src != event.src || std::abs(grant.t_s - event.t_s) > tol)
        report.violations.push_back(
            "unhonoured-grant: node " + std::to_string(grant.dst) +
            " granted its receive port to " + std::to_string(grant.src) +
            " at t = " + std::to_string(grant.t_s) +
            " but the next engagement is " + std::to_string(event.src) +
            "->" + std::to_string(event.dst) + " at t = " +
            std::to_string(event.t_s));
      pending_grant[event.dst].reset();
    }

    if (occupies_ports(event.kind)) {
      send_spans[event.src].push_back(
          {event.t_s, event.t_end_s, event.src, event.dst});
      recv_spans[event.dst].push_back(
          {event.t_s, event.t_end_s, event.src, event.dst});
    } else if (event.kind == TraceEventKind::kBufferDrain) {
      drain_spans[event.dst].push_back(
          {event.t_s, event.t_end_s, event.src, event.dst});
    }

    if (event.kind == TraceEventKind::kSendEnd ||
        event.kind == TraceEventKind::kRelayHop) {
      ++report.transfers;
      report.completion_s = std::max(report.completion_s, event.t_end_s);
    }
    if (event.kind == TraceEventKind::kBufferDrain)
      report.completion_s = std::max(report.completion_s, event.t_end_s);
  }

  for (std::size_t p = 0; p < n; ++p) {
    if (outstanding[p].has_value())
      report.violations.push_back(
          "dangling-send-start: node " + std::to_string(p) + "'s send to " +
          std::to_string(outstanding[p]->dst) + " at t = " +
          std::to_string(outstanding[p]->t_s) + " never resolves");
    if (pending_grant[p].has_value())
      report.violations.push_back(
          "unhonoured-grant: node " + std::to_string(p) +
          " granted its receive port to " +
          std::to_string(pending_grant[p]->src) + " at t = " +
          std::to_string(pending_grant[p]->t_s) +
          " but no transfer followed");
    check_port_overlaps(send_spans[p], "overlapping-send", "send", tol,
                        report.violations);
    if (options_.serialized_receives)
      check_port_overlaps(recv_spans[p], "overlapping-receive", "receive",
                          tol, report.violations);
    // Buffered drains are serial at every receiver, in every model.
    check_port_overlaps(drain_spans[p], "overlapping-drain", "receive", tol,
                        report.violations);
  }
  return report;
}

AuditReport ScheduleAuditor::audit(const EventTrace& trace,
                                   double expected_completion_s) const {
  AuditReport report = audit(trace);
  if (std::abs(report.completion_s - expected_completion_s) >
      options_.tolerance)
    report.violations.push_back(
        "completion-mismatch: trace implies completion at " +
        std::to_string(report.completion_s) +
        " but the simulator reported " +
        std::to_string(expected_completion_s));
  return report;
}

}  // namespace hcs
