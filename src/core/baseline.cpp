#include "core/baseline.hpp"

namespace hcs {

StepSchedule baseline_steps(std::size_t processor_count) {
  std::vector<std::vector<CommEvent>> steps;
  steps.reserve(processor_count > 0 ? processor_count - 1 : 0);
  for (std::size_t offset = 1; offset < processor_count; ++offset) {
    std::vector<CommEvent> step;
    step.reserve(processor_count);
    for (std::size_t i = 0; i < processor_count; ++i)
      step.push_back({i, (i + offset) % processor_count});
    steps.push_back(std::move(step));
  }
  return StepSchedule{processor_count, std::move(steps)};
}

Schedule BaselineScheduler::schedule(const CommMatrix& comm) const {
  return execute_async(baseline_steps(comm.processor_count()), comm,
                       workspace_);
}

Schedule BarrierBaselineScheduler::schedule(const CommMatrix& comm) const {
  return execute_barrier(baseline_steps(comm.processor_count()), comm,
                         workspace_);
}

}  // namespace hcs
