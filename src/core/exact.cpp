#include "core/exact.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "core/greedy_scheduler.hpp"
#include "core/matching_scheduler.hpp"
#include "core/openshop_scheduler.hpp"
#include "util/error.hpp"

namespace hcs {
namespace {

struct PendingEvent {
  std::size_t src;
  std::size_t dst;
  double duration;
};

class BranchAndBound {
 public:
  BranchAndBound(const CommMatrix& comm, std::uint64_t node_budget)
      : comm_(comm), node_budget_(node_budget), n_(comm.processor_count()) {
    send_avail_.assign(n_, 0.0);
    recv_avail_.assign(n_, 0.0);
    send_left_.assign(n_, 0.0);
    recv_left_.assign(n_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = 0; j < n_; ++j) {
        if (i == j) continue;
        pending_.push_back({i, j, comm.time(i, j)});
        send_left_[i] += comm.time(i, j);
        recv_left_[j] += comm.time(i, j);
      }
    }
    seed_incumbent();
  }

  ExactResult run() {
    std::vector<ScheduledEvent> partial;
    partial.reserve(pending_.size());
    dfs(partial, 0.0);
    return ExactResult{Schedule{n_, best_events_}, !budget_exhausted_, nodes_};
  }

 private:
  /// Start the incumbent at the best heuristic so pruning bites early.
  void seed_incumbent() {
    const OpenShopScheduler openshop;
    const GreedyScheduler greedy;
    const MatchingScheduler matching{MatchingObjective::kMaxWeight};
    best_events_ = openshop.schedule(comm_).events();
    best_makespan_ = Schedule{n_, best_events_}.completion_time();
    for (const Scheduler* scheduler :
         std::initializer_list<const Scheduler*>{&greedy, &matching}) {
      Schedule candidate = scheduler->schedule(comm_);
      if (candidate.completion_time() < best_makespan_) {
        best_makespan_ = candidate.completion_time();
        best_events_ = candidate.events();
      }
    }
  }

  [[nodiscard]] double lower_bound(double makespan) const {
    double bound = makespan;
    for (std::size_t p = 0; p < n_; ++p) {
      bound = std::max(bound, send_avail_[p] + send_left_[p]);
      bound = std::max(bound, recv_avail_[p] + recv_left_[p]);
    }
    return bound;
  }

  void dfs(std::vector<ScheduledEvent>& partial, double makespan) {
    if (budget_exhausted_) return;
    if (++nodes_ > node_budget_) {
      budget_exhausted_ = true;
      return;
    }
    if (pending_.empty()) {
      if (makespan < best_makespan_ - kTieTolerance) {
        best_makespan_ = makespan;
        best_events_ = partial;
      }
      return;
    }
    if (lower_bound(makespan) >= best_makespan_ - kTieTolerance) return;

    // Candidate order: earliest feasible start first (list schedules of
    // optimal solutions place events in start order, so good orders are
    // found early), longer events first among ties.
    std::vector<std::size_t> order(pending_.size());
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
    const auto start_of = [&](const PendingEvent& e) {
      return std::max(send_avail_[e.src], recv_avail_[e.dst]);
    };
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double sa = start_of(pending_[a]);
      const double sb = start_of(pending_[b]);
      if (sa != sb) return sa < sb;
      return pending_[a].duration > pending_[b].duration;
    });

    // Dominance: an optimal list order can always pick, as its next event,
    // one that starts before the earliest possible *finish* among all
    // pending events — later starters cannot block it.
    double earliest_finish = std::numeric_limits<double>::infinity();
    for (const PendingEvent& e : pending_)
      earliest_finish = std::min(earliest_finish, start_of(e) + e.duration);

    for (const std::size_t pick : order) {
      const PendingEvent event = pending_[pick];
      const double start = start_of(event);
      if (start > earliest_finish + kTieTolerance) break;  // order is sorted
      const double finish = start + event.duration;

      pending_[pick] = pending_.back();
      pending_.pop_back();
      const double old_send_avail = send_avail_[event.src];
      const double old_recv_avail = recv_avail_[event.dst];
      send_avail_[event.src] = finish;
      recv_avail_[event.dst] = finish;
      send_left_[event.src] -= event.duration;
      recv_left_[event.dst] -= event.duration;
      partial.push_back({event.src, event.dst, start, finish});

      dfs(partial, std::max(makespan, finish));

      partial.pop_back();
      send_left_[event.src] += event.duration;
      recv_left_[event.dst] += event.duration;
      send_avail_[event.src] = old_send_avail;
      recv_avail_[event.dst] = old_recv_avail;
      pending_.push_back(event);
      std::swap(pending_[pick], pending_.back());
      if (budget_exhausted_) return;
    }
  }

  static constexpr double kTieTolerance = 1e-12;

  const CommMatrix& comm_;
  std::uint64_t node_budget_;
  std::size_t n_;
  std::vector<PendingEvent> pending_;
  std::vector<double> send_avail_, recv_avail_, send_left_, recv_left_;
  std::vector<ScheduledEvent> best_events_;
  double best_makespan_ = 0.0;
  std::uint64_t nodes_ = 0;
  bool budget_exhausted_ = false;
};

}  // namespace

ExactResult solve_exact(const CommMatrix& comm, std::uint64_t node_budget) {
  if (comm.processor_count() < 2) {
    // Nothing to schedule.
    return ExactResult{Schedule{std::max<std::size_t>(comm.processor_count(), 1), {}},
                       true, 0};
  }
  return BranchAndBound{comm, node_budget}.run();
}

}  // namespace hcs
