#include "core/hierarchical_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/matrix.hpp"

namespace hcs {
namespace {

/// Events of `schedule` as (src, dst) pairs in start order (ties by src,
/// then dst, for determinism). Only the order survives splicing — the
/// final times come from the list pass.
std::vector<std::pair<std::size_t, std::size_t>> event_order(
    const Schedule& schedule) {
  std::vector<ScheduledEvent> events = schedule.events();
  std::sort(events.begin(), events.end(),
            [](const ScheduledEvent& a, const ScheduledEvent& b) {
              if (a.start_s != b.start_s) return a.start_s < b.start_s;
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  std::vector<std::pair<std::size_t, std::size_t>> order;
  order.reserve(events.size());
  for (const ScheduledEvent& e : events) order.emplace_back(e.src, e.dst);
  return order;
}

}  // namespace

HierarchicalScheduler::HierarchicalScheduler(Clustering clustering,
                                             Options options)
    : clustering_(std::move(clustering)), options_(options) {
  name_ = "hierarchical(" +
          std::string(scheduler_name(options_.inner)) + ")";
}

Schedule HierarchicalScheduler::schedule(const CommMatrix& comm) const {
  const std::size_t n = comm.processor_count();
  if (clustering_.node_count() != n)
    throw InputError(
        "HierarchicalScheduler: clustering does not cover this matrix");
  const std::unique_ptr<Scheduler> inner =
      make_scheduler(options_.inner, options_.seed);
  if (clustering_.flat()) return inner->schedule(comm);

  const std::size_t k = clustering_.cluster_count();
  std::vector<std::pair<std::size_t, std::size_t>> order;
  order.reserve(n * (n - 1));

  // Phase 1: intra-cluster exchanges. Clusters have disjoint ports, so
  // their event streams interleave freely in the list pass; one inner
  // scheduler instance is reused so its warm workspace carries across
  // clusters.
  for (const std::vector<std::size_t>& members : clustering_.members) {
    const std::size_t m = members.size();
    if (m < 2) continue;
    Matrix<double> sub(m, m, 0.0);
    for (std::size_t a = 0; a < m; ++a)
      for (std::size_t b = 0; b < m; ++b)
        if (a != b) sub(a, b) = comm.time(members[a], members[b]);
    for (const auto& [src, dst] : event_order(inner->schedule(CommMatrix{
             std::move(sub)})))
      order.emplace_back(members[src], members[dst]);
  }

  // Phase 2: elect the comm-medoid of each cluster — the member with the
  // least total exchange time with its fellows, ties to the lowest id —
  // and schedule the K-cluster quotient exchange over the medoids' link
  // structure. Each quotient entry is scaled by its block's larger side:
  // an estimate of the serialized time the bottleneck port spends on the
  // block, so the inner algorithm prioritizes heavy cluster pairs.
  std::vector<std::size_t> reps;
  reps.reserve(k);
  for (const std::vector<std::size_t>& members : clustering_.members) {
    std::size_t best = members.front();
    double best_total = std::numeric_limits<double>::infinity();
    for (const std::size_t i : members) {
      double total = 0.0;
      for (const std::size_t j : members)
        if (i != j) total += comm.time(i, j) + comm.time(j, i);
      if (total < best_total) {
        best_total = total;
        best = i;
      }
    }
    reps.push_back(best);
  }
  Matrix<double> quotient(k, k, 0.0);
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t b = 0; b < k; ++b)
      if (a != b)
        quotient(a, b) =
            comm.time(reps[a], reps[b]) *
            static_cast<double>(std::max(clustering_.members[a].size(),
                                         clustering_.members[b].size()));

  // Phase 3: expand each quotient event A -> B into its point-to-point
  // block, round-ordered by the proper edge coloring of K_{m,p} with
  // color(ia, jb) = (ia + jb) mod max(m, p) — within a round every sender
  // and receiver appears at most once, so rounds pack side by side
  // instead of piling onto one port.
  for (const auto& [a, b] :
       event_order(inner->schedule(CommMatrix{std::move(quotient)}))) {
    const std::vector<std::size_t>& from = clustering_.members[a];
    const std::vector<std::size_t>& to = clustering_.members[b];
    const std::size_t rounds = std::max(from.size(), to.size());
    for (std::size_t color = 0; color < rounds; ++color) {
      for (std::size_t ia = 0; ia < from.size(); ++ia) {
        const std::size_t jb = (color + rounds - ia) % rounds;
        if (jb < to.size()) order.emplace_back(from[ia], to[jb]);
      }
    }
  }

  // Splice: greedy per-port list pass over the priority order. Each event
  // starts the instant both its ports are free, which serializes every
  // port by construction — the validity guarantee is independent of how
  // the order was produced.
  std::vector<double> send_avail(n, 0.0);
  std::vector<double> recv_avail(n, 0.0);
  std::vector<ScheduledEvent> events;
  events.reserve(order.size());
  for (const auto& [src, dst] : order) {
    const double start = std::max(send_avail[src], recv_avail[dst]);
    const double finish = start + comm.time(src, dst);
    events.push_back({src, dst, start, finish});
    send_avail[src] = finish;
    recv_avail[dst] = finish;
  }
  return Schedule{n, std::move(events)};
}

}  // namespace hcs
