#include "core/hierarchical_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/matrix.hpp"

namespace hcs {
namespace {

/// Events of `schedule` as (src, dst) pairs in start order (ties by src,
/// then dst, for determinism). Only the order survives splicing — the
/// final times come from the list pass.
std::vector<std::pair<std::size_t, std::size_t>> event_order(
    const Schedule& schedule) {
  std::vector<ScheduledEvent> events = schedule.events();
  std::sort(events.begin(), events.end(),
            [](const ScheduledEvent& a, const ScheduledEvent& b) {
              if (a.start_s != b.start_s) return a.start_s < b.start_s;
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  std::vector<std::pair<std::size_t, std::size_t>> order;
  order.reserve(events.size());
  for (const ScheduledEvent& e : events) order.emplace_back(e.src, e.dst);
  return order;
}

/// The comm-medoid of `members`: the member with the least total exchange
/// time with its fellows, ties to the lowest id.
std::size_t comm_medoid(const CommMatrix& comm,
                        const std::vector<std::size_t>& members) {
  std::size_t best = members.front();
  double best_total = std::numeric_limits<double>::infinity();
  for (const std::size_t i : members) {
    double total = 0.0;
    for (const std::size_t j : members)
      if (i != j) total += comm.time(i, j) + comm.time(j, i);
    if (total < best_total) {
      best_total = total;
      best = i;
    }
  }
  return best;
}

/// Phases 1–3 of the hierarchical algorithm over an explicit cluster
/// member partition and representative set: intra-cluster inner schedules,
/// the weighted quotient exchange over the representatives, and the
/// K_{m,p} edge-coloring block expansion. Returns the priority order the
/// splice pass consumes.
std::vector<std::pair<std::size_t, std::size_t>> hierarchical_order(
    const CommMatrix& comm,
    const std::vector<std::vector<std::size_t>>& clusters,
    const std::vector<std::size_t>& reps, const Scheduler& inner) {
  const std::size_t k = clusters.size();
  std::vector<std::pair<std::size_t, std::size_t>> order;

  // Phase 1: intra-cluster exchanges. Clusters have disjoint ports, so
  // their event streams interleave freely in the list pass; one inner
  // scheduler instance is reused so its warm workspace carries across
  // clusters.
  for (const std::vector<std::size_t>& members : clusters) {
    const std::size_t m = members.size();
    if (m < 2) continue;
    Matrix<double> sub(m, m, 0.0);
    for (std::size_t a = 0; a < m; ++a)
      for (std::size_t b = 0; b < m; ++b)
        if (a != b) sub(a, b) = comm.time(members[a], members[b]);
    for (const auto& [src, dst] : event_order(inner.schedule(CommMatrix{
             std::move(sub)})))
      order.emplace_back(members[src], members[dst]);
  }

  // Phase 2: schedule the K-cluster quotient exchange over the
  // representatives' link structure. Each quotient entry is scaled by its
  // block's larger side: an estimate of the serialized time the
  // bottleneck port spends on the block, so the inner algorithm
  // prioritizes heavy cluster pairs.
  if (k < 2) return order;
  Matrix<double> quotient(k, k, 0.0);
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t b = 0; b < k; ++b)
      if (a != b)
        quotient(a, b) =
            comm.time(reps[a], reps[b]) *
            static_cast<double>(std::max(clusters[a].size(),
                                         clusters[b].size()));

  // Phase 3: expand each quotient event A -> B into its point-to-point
  // block, round-ordered by the proper edge coloring of K_{m,p} with
  // color(ia, jb) = (ia + jb) mod max(m, p) — within a round every sender
  // and receiver appears at most once, so rounds pack side by side
  // instead of piling onto one port.
  for (const auto& [a, b] :
       event_order(inner.schedule(CommMatrix{std::move(quotient)}))) {
    const std::vector<std::size_t>& from = clusters[a];
    const std::vector<std::size_t>& to = clusters[b];
    const std::size_t rounds = std::max(from.size(), to.size());
    for (std::size_t color = 0; color < rounds; ++color) {
      for (std::size_t ia = 0; ia < from.size(); ++ia) {
        const std::size_t jb = (color + rounds - ia) % rounds;
        if (jb < to.size()) order.emplace_back(from[ia], to[jb]);
      }
    }
  }
  return order;
}

/// Greedy per-port list pass over the priority order. Each event starts
/// the instant both its ports are free, which serializes every port by
/// construction — the validity guarantee is independent of how the order
/// was produced.
Schedule splice(const CommMatrix& comm, std::size_t n,
                const std::vector<std::pair<std::size_t, std::size_t>>& order) {
  std::vector<double> send_avail(n, 0.0);
  std::vector<double> recv_avail(n, 0.0);
  std::vector<ScheduledEvent> events;
  events.reserve(order.size());
  for (const auto& [src, dst] : order) {
    const double start = std::max(send_avail[src], recv_avail[dst]);
    const double finish = start + comm.time(src, dst);
    events.push_back({src, dst, start, finish});
    send_avail[src] = finish;
    recv_avail[dst] = finish;
  }
  return Schedule{n, std::move(events)};
}

}  // namespace

HierarchicalScheduler::HierarchicalScheduler(Clustering clustering,
                                             Options options)
    : clustering_(std::move(clustering)), options_(options) {
  name_ = "hierarchical(" +
          std::string(scheduler_name(options_.inner)) + ")";
}

Schedule HierarchicalScheduler::schedule(const CommMatrix& comm) const {
  const std::size_t n = comm.processor_count();
  if (clustering_.node_count() != n)
    throw InputError(
        "HierarchicalScheduler: clustering does not cover this matrix");
  const std::unique_ptr<Scheduler> inner =
      make_scheduler(options_.inner, options_.seed);
  if (clustering_.flat()) return inner->schedule(comm);

  std::vector<std::size_t> reps;
  reps.reserve(clustering_.members.size());
  for (const std::vector<std::size_t>& members : clustering_.members)
    reps.push_back(comm_medoid(comm, members));

  return splice(comm, n,
                hierarchical_order(comm, clustering_.members, reps, *inner));
}

Schedule HierarchicalScheduler::schedule_degraded(
    const CommMatrix& comm, const std::vector<char>& node_down,
    const std::vector<char>& pair_blocked, DegradeInfo* info) const {
  const std::size_t n = comm.processor_count();
  if (clustering_.node_count() != n)
    throw InputError(
        "HierarchicalScheduler: clustering does not cover this matrix");
  if (node_down.size() != n || pair_blocked.size() != n * n)
    throw InputError(
        "HierarchicalScheduler: degraded views do not cover this matrix");
  const std::unique_ptr<Scheduler> inner =
      make_scheduler(options_.inner, options_.seed);

  const auto usable = [&](std::size_t i, std::size_t j) {
    return !pair_blocked[i * n + j] && !pair_blocked[j * n + i];
  };

  // Drop down nodes from their clusters and split what remains of each
  // cluster into connected components over the usable undirected pairs —
  // members that can no longer reach each other must not share a quotient
  // representative.
  std::vector<std::vector<std::size_t>> clusters;
  std::size_t split_extra = 0;
  std::vector<std::pair<std::size_t, std::size_t>> reelected;
  std::vector<std::size_t> reps;
  for (const std::vector<std::size_t>& members : clustering_.members) {
    std::vector<std::size_t> alive;
    for (const std::size_t i : members)
      if (!node_down[i]) alive.push_back(i);
    if (alive.empty()) continue;
    const std::size_t old_rep = comm_medoid(comm, members);

    std::vector<char> seen(alive.size(), 0);
    std::size_t components = 0;
    for (std::size_t s = 0; s < alive.size(); ++s) {
      if (seen[s]) continue;
      std::vector<std::size_t> component;
      std::vector<std::size_t> stack{s};
      seen[s] = 1;
      while (!stack.empty()) {
        const std::size_t a = stack.back();
        stack.pop_back();
        component.push_back(alive[a]);
        for (std::size_t b = 0; b < alive.size(); ++b)
          if (!seen[b] && usable(alive[a], alive[b])) {
            seen[b] = 1;
            stack.push_back(b);
          }
      }
      std::sort(component.begin(), component.end());
      ++components;

      // The original representative keeps its seat in whichever component
      // it survived into; every other component (and every component when
      // the representative itself is down) re-elects its comm-medoid.
      const bool keeps_seat =
          !node_down[old_rep] &&
          std::find(component.begin(), component.end(), old_rep) !=
              component.end();
      if (keeps_seat) {
        reps.push_back(old_rep);
      } else {
        const std::size_t new_rep = comm_medoid(comm, component);
        reps.push_back(new_rep);
        reelected.emplace_back(old_rep, new_rep);
      }
      clusters.push_back(std::move(component));
    }
    split_extra += components - 1;
  }

  const bool flat_fallback = clusters.size() < 2 || clustering_.flat();
  if (info != nullptr) {
    info->reelected = reelected;
    info->clusters_split = split_extra;
    info->flat_fallback = flat_fallback;
  }

  std::vector<std::pair<std::size_t, std::size_t>> order;
  order.reserve(n * (n - 1));
  if (flat_fallback) {
    // Fewer than two usable clusters: the hierarchy has collapsed, so plan
    // the surviving nodes flat with the inner algorithm.
    std::vector<std::size_t> alive;
    for (std::size_t i = 0; i < n; ++i)
      if (!node_down[i]) alive.push_back(i);
    const std::size_t m = alive.size();
    if (m >= 2) {
      Matrix<double> sub(m, m, 0.0);
      for (std::size_t a = 0; a < m; ++a)
        for (std::size_t b = 0; b < m; ++b)
          if (a != b) sub(a, b) = comm.time(alive[a], alive[b]);
      for (const auto& [src, dst] : event_order(inner->schedule(CommMatrix{
               std::move(sub)})))
        order.emplace_back(alive[src], alive[dst]);
    }
  } else {
    order = hierarchical_order(comm, clusters, reps, *inner);
  }

  // Traffic touching down nodes still belongs in the schedule — the
  // executor fails it fast and relays or gives up — but only after every
  // live transfer has had its slot.
  for (std::size_t src = 0; src < n; ++src)
    for (std::size_t dst = 0; dst < n; ++dst)
      if (src != dst && (node_down[src] || node_down[dst]))
        order.emplace_back(src, dst);

  return splice(comm, n, order);
}

}  // namespace hcs
