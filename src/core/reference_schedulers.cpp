#include "core/reference_schedulers.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <utility>

#include "core/comm_matrix.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"

namespace hcs {

StepSchedule reference_greedy_steps(const CommMatrix& comm) {
  const std::size_t n = comm.processor_count();

  // Per-sender destination lists, longest event first. Ties break toward
  // the lower destination index for determinism.
  std::vector<std::vector<std::size_t>> ranked(n);
  for (std::size_t src = 0; src < n; ++src) {
    auto& list = ranked[src];
    for (std::size_t dst = 0; dst < n; ++dst)
      if (dst != src) list.push_back(dst);
    std::stable_sort(list.begin(), list.end(),
                     [&](std::size_t a, std::size_t b) {
                       return comm.time(src, a) > comm.time(src, b);
                     });
  }

  // sent(src, dst) marks pairs already scheduled in earlier steps.
  // (Matrix<bool> would hit vector<bool>'s proxy references.)
  Matrix<unsigned char> sent(n, n, 0);
  std::vector<std::size_t> remaining(n, n - 1);
  std::size_t total_remaining = n * (n - 1);

  // Traversal order for the next step, updated by the fairness rule.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::vector<std::vector<CommEvent>> steps;
  while (total_remaining > 0) {
    std::vector<CommEvent> step;
    std::vector<bool> claimed(n, false);  // destinations taken this step
    std::vector<std::size_t> idled;
    std::size_t last_picker = order.front();

    for (const std::size_t src : order) {
      if (remaining[src] == 0) continue;  // finished senders never idle
      bool found = false;
      for (const std::size_t dst : ranked[src]) {
        if (sent(src, dst) != 0 || claimed[dst]) continue;
        step.push_back({src, dst});
        sent(src, dst) = 1;
        claimed[dst] = true;
        --remaining[src];
        --total_remaining;
        last_picker = src;
        found = true;
        break;
      }
      if (!found) idled.push_back(src);
    }
    check(!step.empty(), "reference_greedy_steps: no progress in a step");
    steps.push_back(std::move(step));

    // Fairness: idle processors pick first next step; otherwise the last
    // picker goes first. Relative order of the others is preserved.
    std::vector<std::size_t> next_order;
    next_order.reserve(n);
    if (!idled.empty()) {
      std::vector<bool> is_idle(n, false);
      for (const std::size_t p : idled) is_idle[p] = true;
      next_order = idled;
      for (const std::size_t p : order)
        if (!is_idle[p]) next_order.push_back(p);
    } else {
      next_order.push_back(last_picker);
      for (const std::size_t p : order)
        if (p != last_picker) next_order.push_back(p);
    }
    order = std::move(next_order);
  }
  return StepSchedule{n, std::move(steps)};
}

Schedule reference_openshop_schedule(const CommMatrix& comm,
                                     const std::vector<double>& initial_send,
                                     const std::vector<double>& initial_recv) {
  const std::size_t n = comm.processor_count();
  check(initial_send.size() == n && initial_recv.size() == n,
        "reference_openshop_schedule: availability vector size mismatch");

  // Receiver sets R_i: receivers sender i still has to serve.
  std::vector<std::vector<std::size_t>> receiver_set(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j) receiver_set[i].push_back(j);

  std::vector<double> recv_avail = initial_recv;

  // Senders ordered by availability time; ties resolve toward the lower
  // index ("processed in an arbitrary order" — fixed for determinism).
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> senders;
  for (std::size_t i = 0; i < n; ++i)
    if (!receiver_set[i].empty()) senders.push({initial_send[i], i});

  std::vector<ScheduledEvent> events;
  events.reserve(n * (n - 1));

  while (!senders.empty()) {
    const auto [avail, sender] = senders.top();
    senders.pop();

    // Earliest available receiver in R_sender; ties toward lower index.
    auto& candidates = receiver_set[sender];
    std::size_t best_pos = 0;
    for (std::size_t pos = 1; pos < candidates.size(); ++pos)
      if (recv_avail[candidates[pos]] < recv_avail[candidates[best_pos]])
        best_pos = pos;
    const std::size_t receiver = candidates[best_pos];
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(best_pos));

    const double start = std::max(avail, recv_avail[receiver]);
    const double finish = start + comm.time(sender, receiver);
    events.push_back({sender, receiver, start, finish});
    recv_avail[receiver] = finish;
    if (!candidates.empty()) senders.push({finish, sender});
  }
  return Schedule{n, std::move(events)};
}

}  // namespace hcs
