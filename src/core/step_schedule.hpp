// Step-structured schedules and the order executor.
//
// The baseline, matching, and greedy schedulers all produce their schedule
// as a sequence of *steps*, each a set of (src, dst) pairs in which no
// sender and no receiver appears twice. The paper's execution semantics
// (§4.3) impose no barrier between steps: "A communication event will
// begin whenever the sending and receiving processors are both ready."
// The order executor turns a StepSchedule into a timed Schedule under
// exactly those semantics; a barrier executor is provided for ablation.
#pragma once

#include <cstddef>
#include <vector>

#include "core/comm_matrix.hpp"
#include "core/schedule.hpp"

namespace hcs {

class SchedulerWorkspace;

/// An unscheduled communication event: source and destination processor.
struct CommEvent {
  std::size_t src = 0;
  std::size_t dst = 0;
  [[nodiscard]] bool operator==(const CommEvent&) const = default;
};

/// A schedule expressed as ordered steps. Within one step each processor
/// sends at most once and receives at most once; steps fix the per-sender
/// and per-receiver event orders but not the absolute times.
class StepSchedule {
 public:
  StepSchedule(std::size_t processor_count,
               std::vector<std::vector<CommEvent>> steps);

  [[nodiscard]] std::size_t processor_count() const noexcept {
    return processor_count_;
  }
  [[nodiscard]] const std::vector<std::vector<CommEvent>>& steps() const noexcept {
    return steps_;
  }

  /// Total number of events across all steps.
  [[nodiscard]] std::size_t event_count() const;

  /// True when the steps jointly cover every ordered pair of distinct
  /// processors exactly once.
  [[nodiscard]] bool covers_total_exchange() const;

 private:
  std::size_t processor_count_ = 0;
  std::vector<std::vector<CommEvent>> steps_;
};

/// Asynchronous (paper-semantics) execution: processing events in step
/// order, each event starts as soon as its sender has finished its
/// previous send and its receiver its previous receive.
[[nodiscard]] Schedule execute_async(const StepSchedule& steps,
                                     const CommMatrix& comm);

/// Step-synchronized execution: step k+1 starts only after every event of
/// step k has finished. Never faster than execute_async; used by the
/// ablation bench to quantify what the no-barrier semantics buy.
[[nodiscard]] Schedule execute_barrier(const StepSchedule& steps,
                                       const CommMatrix& comm);

/// Workspace-backed executors: the per-port availability scratch lives in
/// the caller's SchedulerWorkspace, so a warmed executor allocates only
/// the returned schedule. Output is identical to the two-argument forms.
[[nodiscard]] Schedule execute_async(const StepSchedule& steps,
                                     const CommMatrix& comm,
                                     SchedulerWorkspace& workspace);
[[nodiscard]] Schedule execute_barrier(const StepSchedule& steps,
                                       const CommMatrix& comm,
                                       SchedulerWorkspace& workspace);

}  // namespace hcs
