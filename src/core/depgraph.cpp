#include "core/depgraph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hcs {

DependenceGraph::DependenceGraph(const StepSchedule& steps,
                                 const CommMatrix& comm) {
  check(steps.processor_count() == comm.processor_count(),
        "DependenceGraph: size mismatch");
  const std::size_t n = steps.processor_count();

  // Walk the steps in order; for each processor track its most recent
  // send node and most recent receive node to attach the two edge kinds.
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> last_send(n, kNone);
  std::vector<std::size_t> last_recv(n, kNone);

  for (const auto& step : steps.steps()) {
    for (const CommEvent& event : step) {
      const std::size_t node = events_.size();
      events_.push_back(event);
      weights_.push_back(comm.time(event.src, event.dst));
      adjacency_.emplace_back();
      topo_order_.push_back(node);
      if (last_send[event.src] != kNone)
        adjacency_[last_send[event.src]].push_back(node);  // vertical edge
      if (last_recv[event.dst] != kNone &&
          last_recv[event.dst] != last_send[event.src])
        adjacency_[last_recv[event.dst]].push_back(node);  // diagonal edge
      last_send[event.src] = node;
      last_recv[event.dst] = node;
    }
  }
}

double DependenceGraph::longest_path_weight() const {
  double best = 0.0;
  std::vector<double> distance(node_count(), 0.0);
  // Nodes were created in step order, which is a topological order, so a
  // reverse sweep computes "weight of heaviest path starting at v".
  for (auto it = topo_order_.rbegin(); it != topo_order_.rend(); ++it) {
    const std::size_t v = *it;
    double tail = 0.0;
    for (const std::size_t succ : adjacency_[v])
      tail = std::max(tail, distance[succ]);
    distance[v] = weights_[v] + tail;
    best = std::max(best, distance[v]);
  }
  return best;
}

std::vector<std::size_t> DependenceGraph::critical_path() const {
  std::vector<double> distance(node_count(), 0.0);
  for (auto it = topo_order_.rbegin(); it != topo_order_.rend(); ++it) {
    const std::size_t v = *it;
    double tail = 0.0;
    for (const std::size_t succ : adjacency_[v])
      tail = std::max(tail, distance[succ]);
    distance[v] = weights_[v] + tail;
  }

  std::vector<std::size_t> path;
  if (node_count() == 0) return path;
  std::size_t current =
      static_cast<std::size_t>(std::max_element(distance.begin(), distance.end()) -
                               distance.begin());
  path.push_back(current);
  for (;;) {
    const auto& successors = adjacency_[current];
    if (successors.empty()) break;
    const std::size_t next = *std::max_element(
        successors.begin(), successors.end(),
        [&](std::size_t a, std::size_t b) { return distance[a] < distance[b]; });
    path.push_back(next);
    current = next;
  }
  return path;
}

}  // namespace hcs
