// Scheduler interface and factory.
//
// A Scheduler maps a communication matrix to a valid timed schedule. The
// five algorithms the paper evaluates (§4–5) are available through
// `make_scheduler`; `paper_schedulers()` returns them in the order the
// figures plot them.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/comm_matrix.hpp"
#include "core/schedule.hpp"

namespace hcs {

/// Abstract total-exchange scheduling algorithm.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Short stable identifier, e.g. "baseline", "openshop".
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Produces a timed schedule for `comm`. Every implementation's output
  /// satisfies Schedule::validate against `comm`.
  [[nodiscard]] virtual Schedule schedule(const CommMatrix& comm) const = 0;
};

/// Mixin for schedulers that can plan from non-zero port availabilities.
///
/// Mid-exchange rescheduling (adaptive/checkpoint.hpp) starts from a
/// state where ports free at different times; a plan computed for an idle
/// system can order events badly against that skew. Schedulers
/// implementing this interface take the availability vector into account;
/// the adaptive executor detects the capability via dynamic_cast.
class AvailabilityAwareScheduler {
 public:
  virtual ~AvailabilityAwareScheduler() = default;

  /// Like Scheduler::schedule, but sender/receiver ports only become
  /// usable at the given times (seconds, relative to the plan's zero).
  /// Event start times in the result respect those offsets.
  [[nodiscard]] virtual Schedule schedule_with_availability(
      const CommMatrix& comm, const std::vector<double>& send_avail,
      const std::vector<double>& recv_avail) const = 0;
};

/// What a degraded-mode schedule changed relative to the healthy plan.
/// Populated by FaultAwareScheduler::schedule_degraded so the executor can
/// surface re-elections and topology changes in traces and metrics.
struct DegradeInfo {
  /// Cluster representatives replaced because the original was down:
  /// (old_representative, new_representative) pairs.
  std::vector<std::pair<std::size_t, std::size_t>> reelected;
  /// Clusters split into connected components because intra-cluster
  /// connectivity was cut (count of extra clusters created).
  std::size_t clusters_split = 0;
  /// The scheduler abandoned its hierarchy and planned flat (fewer than
  /// two usable clusters remained).
  bool flat_fallback = false;
};

/// Mixin for schedulers that can plan around known-bad nodes and pairs.
///
/// Online re-planning (fault/resilient.hpp) re-schedules the undelivered
/// remainder of an exchange once faults strike. A fault-oblivious
/// scheduler sees the degraded directory and routes around slow pairs by
/// price alone; schedulers implementing this interface are additionally
/// told which nodes are down and which pairs are unusable, so they can
/// restructure (re-elect cluster representatives, split clusters, fall
/// back to flat) instead of merely re-pricing. Detected via dynamic_cast,
/// like AvailabilityAwareScheduler.
class FaultAwareScheduler {
 public:
  virtual ~FaultAwareScheduler() = default;

  /// Like Scheduler::schedule, but `node_down[p]` marks processors that
  /// are currently unreachable and `pair_blocked[src * P + dst]` marks
  /// directed pairs whose link is cut. Traffic touching down nodes or
  /// blocked pairs must still appear in the schedule (the executor gives
  /// it a chance to fail fast and relay); it is placed last. `info`, when
  /// non-null, receives what the degradation changed.
  [[nodiscard]] virtual Schedule schedule_degraded(
      const CommMatrix& comm, const std::vector<char>& node_down,
      const std::vector<char>& pair_blocked, DegradeInfo* info) const = 0;
};

/// The scheduling algorithms implemented by this library.
enum class SchedulerKind {
  kBaseline,         ///< caterpillar, §4.2 — the homogeneous-system standard
  kBaselineBarrier,  ///< caterpillar with step synchronization: how stepped
                     ///< all-to-all exchanges behave in homogeneous-system
                     ///< libraries, where each step completes before the
                     ///< next begins; reproduces the magnitude of the
                     ///< paper's reported baseline gap
  kMaxMatching,      ///< series of maximum weight matchings, §4.3
  kMinMatching,      ///< series of minimum weight matchings, §4.3
  kGreedy,           ///< rank-ordered greedy with fairness, §4.4
  kOpenShop,         ///< open-shop list scheduler, §4.5 (2-approximation)
  kRandom,           ///< random caterpillar relabeling — adaptivity-blind control
};

/// Instantiates a scheduler. `seed` is used only by kRandom.
[[nodiscard]] std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                                        std::uint64_t seed = 0);

/// Stable identifier of a scheduler kind (matches Scheduler::name()).
[[nodiscard]] std::string_view scheduler_name(SchedulerKind kind);

/// The five algorithms the paper's figures compare, in plot order:
/// baseline, max matching, min matching, greedy, open shop.
[[nodiscard]] const std::vector<SchedulerKind>& paper_schedulers();

}  // namespace hcs
