// Hierarchical cluster-aware total-exchange scheduling.
//
// Every flat scheduler in this library prices and orders all P² events
// against the full directory — O(P³)–O(P⁴) work that tops out in the low
// hundreds of processors. But wide-area systems are not flat: detection
// (netmodel/cluster_detect) recovers logical homogeneous clusters, and
// this scheduler exploits them, turning one giant instance into many
// small ones:
//
//   1. intra-cluster — run the configured inner scheduler on each
//      cluster's sub-matrix independently (clusters' ports are disjoint,
//      so their phases overlap freely);
//   2. quotient — elect a representative per cluster (the comm-medoid)
//      and schedule the K×K inter-cluster exchange over the
//      representatives' link structure, with each quotient event weighted
//      by its block's size — a block-duration estimate;
//   3. splice — expand each quotient event (A → B) into its |A|·|B|
//      point-to-point messages, round-ordered by a proper edge coloring
//      of K_{|A|,|B|} so no port is asked for two messages in one round,
//      then re-time everything with a greedy per-port list pass.
//
// The list pass serializes each send and receive port by construction,
// so the spliced result is a valid Schedule (auditor-clean) regardless of
// the inner algorithm; the inner and quotient schedules contribute
// ordering, not absolute times. With a degenerate single-cluster
// detection the scheduler IS the inner scheduler — the flat path,
// untouched.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "core/scheduler.hpp"
#include "netmodel/cluster_detect.hpp"

namespace hcs {

class HierarchicalScheduler final : public Scheduler,
                                    public FaultAwareScheduler {
 public:
  struct Options {
    /// Algorithm used both intra-cluster and for the quotient exchange.
    SchedulerKind inner = SchedulerKind::kGreedy;
    /// Seed forwarded to the inner scheduler (only kRandom consumes it).
    std::uint64_t seed = 0;
  };

  /// `clustering` must partition exactly the processors of every comm
  /// matrix later passed to schedule().
  HierarchicalScheduler(Clustering clustering, Options options);
  explicit HierarchicalScheduler(Clustering clustering)
      : HierarchicalScheduler(std::move(clustering), Options{}) {}

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] Schedule schedule(const CommMatrix& comm) const override;

  /// Degraded-mode planning (FaultAwareScheduler). Down nodes are dropped
  /// from their clusters; clusters whose intra-cluster connectivity is cut
  /// split into connected components over the usable undirected pairs;
  /// crashed representatives trigger comm-medoid re-election among each
  /// surviving component. With fewer than two usable clusters left the
  /// scheduler plans flat. Traffic touching down nodes is appended last,
  /// so the executor fails it fast and relays without stalling the live
  /// part of the exchange. The splice pass is unchanged, so the result is
  /// valid by construction.
  [[nodiscard]] Schedule schedule_degraded(
      const CommMatrix& comm, const std::vector<char>& node_down,
      const std::vector<char>& pair_blocked,
      DegradeInfo* info) const override;

  [[nodiscard]] const Clustering& clustering() const noexcept {
    return clustering_;
  }

 private:
  Clustering clustering_;
  Options options_;
  std::string name_;
};

}  // namespace hcs
