#include "core/random_scheduler.hpp"

#include <numeric>

#include "util/rng.hpp"

namespace hcs {

StepSchedule random_steps(std::size_t processor_count, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::size_t> relabel(processor_count);
  std::iota(relabel.begin(), relabel.end(), 0);
  rng.shuffle(relabel);

  std::vector<std::size_t> offsets;
  for (std::size_t offset = 1; offset < processor_count; ++offset)
    offsets.push_back(offset);
  rng.shuffle(offsets);

  std::vector<std::vector<CommEvent>> steps;
  steps.reserve(offsets.size());
  for (const std::size_t offset : offsets) {
    std::vector<CommEvent> step;
    step.reserve(processor_count);
    for (std::size_t i = 0; i < processor_count; ++i)
      step.push_back({relabel[i], relabel[(i + offset) % processor_count]});
    steps.push_back(std::move(step));
  }
  return StepSchedule{processor_count, std::move(steps)};
}

Schedule RandomScheduler::schedule(const CommMatrix& comm) const {
  return execute_async(random_steps(comm.processor_count(), seed_), comm,
                       workspace_);
}

}  // namespace hcs
