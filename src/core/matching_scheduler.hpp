// Matching-based schedulers (§4.3).
//
// The P x P communication events are partitioned into P contention-free
// steps by computing a series of maximum (or minimum) weight complete
// matchings in the bipartite sender/receiver graph, deleting each
// matching's edges before computing the next. Steps execute without
// barriers. Grouping events of similar length into the same step is what
// removes the idle cycles the baseline suffers; complexity is O(P^4)
// (P matchings, O(P^3) each).
#pragma once

#include "core/scheduler.hpp"
#include "core/step_schedule.hpp"
#include "graph/matching.hpp"

namespace hcs {

/// The matching decomposition as a StepSchedule, in extraction order
/// (heaviest matching first for kMaxWeight, lightest first for
/// kMinWeight). Self-pairs carry zero cost and are dropped from the steps.
[[nodiscard]] StepSchedule matching_steps(const CommMatrix& comm,
                                          MatchingObjective objective);

/// As above with a caller-owned LAP workspace, for hot paths that
/// re-schedule repeatedly (adaptive/, qos/, runtime/).
[[nodiscard]] StepSchedule matching_steps(const CommMatrix& comm,
                                          MatchingObjective objective,
                                          LapSolver& solver);

/// Scheduler built on a series of weight matchings. The instance owns a
/// LapSolver workspace reused across schedule() calls, making repeated
/// re-scheduling (the §6.2 adaptivity loop) allocation-free in the LAP
/// kernel; consequently a single instance is not thread-safe.
class MatchingScheduler final : public Scheduler {
 public:
  explicit MatchingScheduler(MatchingObjective objective)
      : objective_(objective) {}

  [[nodiscard]] std::string_view name() const override {
    return objective_ == MatchingObjective::kMaxWeight ? "max-matching"
                                                       : "min-matching";
  }
  [[nodiscard]] Schedule schedule(const CommMatrix& comm) const override;

 private:
  MatchingObjective objective_;
  mutable LapSolver solver_;  // scratch workspace, not logical state
};

}  // namespace hcs
