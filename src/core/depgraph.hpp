// Dependence graph of a step-structured schedule (Theorem 2 machinery).
//
// The DG has one node per communication event. A directed edge runs from
// event a to event b when b waits on a under asynchronous execution:
// either b is its sender's next event after a (vertical edge — same
// column of the timing diagram), or b is its receiver's next incoming
// event after a (diagonal edge). The completion time of the executed
// schedule equals the weight of the longest path, where a node's weight
// is its event duration; tests verify this against the executor.
#pragma once

#include <cstddef>
#include <vector>

#include "core/comm_matrix.hpp"
#include "core/step_schedule.hpp"

namespace hcs {

/// The dependence graph of a StepSchedule.
class DependenceGraph {
 public:
  /// Builds the DG of `steps` with node weights from `comm`.
  DependenceGraph(const StepSchedule& steps, const CommMatrix& comm);

  /// Number of events (nodes).
  [[nodiscard]] std::size_t node_count() const noexcept { return weights_.size(); }

  /// Event of node `v`.
  [[nodiscard]] CommEvent event(std::size_t v) const { return events_.at(v); }

  /// Duration of node `v`'s event.
  [[nodiscard]] double weight(std::size_t v) const { return weights_.at(v); }

  /// Successors of node `v`.
  [[nodiscard]] const std::vector<std::size_t>& successors(std::size_t v) const {
    return adjacency_.at(v);
  }

  /// Weight of the heaviest path (sum of node weights along it). Equals
  /// the asynchronous execution's completion time.
  [[nodiscard]] double longest_path_weight() const;

  /// Nodes of one heaviest path, in dependence order — the critical path
  /// of the schedule.
  [[nodiscard]] std::vector<std::size_t> critical_path() const;

 private:
  std::vector<CommEvent> events_;
  std::vector<double> weights_;
  std::vector<std::vector<std::size_t>> adjacency_;  ///< v -> successors
  std::vector<std::size_t> topo_order_;              ///< step order (already topological)
};

}  // namespace hcs
