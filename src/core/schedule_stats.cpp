#include "core/schedule_stats.hpp"

#include <algorithm>
#include <ostream>

#include "util/error.hpp"

namespace hcs {

ScheduleStats analyze_schedule(const Schedule& schedule, const CommMatrix& comm) {
  const std::size_t n = schedule.processor_count();
  check(comm.processor_count() == n, "analyze_schedule: size mismatch");

  ScheduleStats stats;
  stats.completion_s = schedule.completion_time();
  stats.lower_bound_s = comm.lower_bound();
  stats.ratio_to_lower_bound =
      stats.lower_bound_s > 0.0 ? stats.completion_s / stats.lower_bound_s : 1.0;

  double bottleneck_total = -1.0;
  double utilization_sum = 0.0;
  for (std::size_t p = 0; p < n; ++p) {
    ProcessorStats row;
    row.processor = p;
    for (const ScheduledEvent& event : schedule.sender_events(p)) {
      row.send_busy_s += event.duration();
      row.last_active_s = std::max(row.last_active_s, event.finish_s);
    }
    for (const ScheduledEvent& event : schedule.receiver_events(p)) {
      row.recv_busy_s += event.duration();
      row.last_active_s = std::max(row.last_active_s, event.finish_s);
    }
    if (stats.completion_s > 0.0) {
      row.send_utilization = row.send_busy_s / stats.completion_s;
      row.recv_utilization = row.recv_busy_s / stats.completion_s;
    }
    utilization_sum += row.send_utilization + row.recv_utilization;

    const double port_total = std::max(comm.send_total(p), comm.recv_total(p));
    if (port_total > bottleneck_total) {
      bottleneck_total = port_total;
      stats.bottleneck_processor = p;
    }
    stats.processors.push_back(row);
  }
  stats.mean_utilization =
      n > 0 ? utilization_sum / (2.0 * static_cast<double>(n)) : 0.0;
  return stats;
}

Table stats_table(const ScheduleStats& stats) {
  Table table{{"processor", "send busy (s)", "send util", "recv busy (s)",
               "recv util", "last active (s)"}};
  for (const ProcessorStats& row : stats.processors) {
    std::string label = "P" + std::to_string(row.processor);
    if (row.processor == stats.bottleneck_processor) label += " *";
    table.add_row({label, format_double(row.send_busy_s, 2),
                   format_double(row.send_utilization, 3),
                   format_double(row.recv_busy_s, 2),
                   format_double(row.recv_utilization, 3),
                   format_double(row.last_active_s, 2)});
  }
  return table;
}

void write_gantt_csv(std::ostream& out, const Schedule& schedule) {
  out << "src,dst,start_s,finish_s,duration_s\n";
  std::vector<ScheduledEvent> events = schedule.events();
  std::sort(events.begin(), events.end(),
            [](const ScheduledEvent& a, const ScheduledEvent& b) {
              return a.start_s < b.start_s ||
                     (a.start_s == b.start_s && a.src < b.src);
            });
  for (const ScheduledEvent& event : events)
    out << event.src << ',' << event.dst << ','
        << format_double(event.start_s, 6) << ','
        << format_double(event.finish_s, 6) << ','
        << format_double(event.duration(), 6) << '\n';
}

}  // namespace hcs
