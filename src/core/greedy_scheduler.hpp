// Greedy scheduler (§4.4) — an O(P^3) approximation to the matching
// scheduler.
//
// Each sender's destinations are rank-ordered by decreasing communication
// time. Steps are composed by traversing the processors in a rotating
// order: a processor picks the first destination in its ranked list that
// it has not sent to in an earlier step and that no earlier processor has
// claimed in this step; failing that, it idles for the step. Fairness
// rule: processors that idled in a step pick first in the next step; if
// nobody idled, the processor that picked last picks first next.
#pragma once

#include "core/scheduler.hpp"
#include "core/step_schedule.hpp"

namespace hcs {

/// The greedy step composition. The number of steps can exceed P when
/// steps are incomplete. Exposed for tests and the dependence-graph
/// analysis.
[[nodiscard]] StepSchedule greedy_steps(const CommMatrix& comm);

/// Scheduler wrapping greedy_steps under asynchronous execution.
class GreedyScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "greedy"; }
  [[nodiscard]] Schedule schedule(const CommMatrix& comm) const override;
};

}  // namespace hcs
