// Greedy scheduler (§4.4) — an O(P^3) approximation to the matching
// scheduler.
//
// Each sender's destinations are rank-ordered by decreasing communication
// time. Steps are composed by traversing the processors in a rotating
// order: a processor picks the first destination in its ranked list that
// it has not sent to in an earlier step and that no earlier processor has
// claimed in this step; failing that, it idles for the step. Fairness
// rule: processors that idled in a step pick first in the next step; if
// nobody idled, the processor that picked last picks first next.
//
// The implementation runs the step composition over a SchedulerWorkspace
// (per-sender rank lists + pending-destination bitsets, cleared never
// shrunk): scans skip already-sent destinations in O(1) per word instead
// of rescanning ranked lists, and a warmed call allocates nothing beyond
// the returned schedule. Output is bit-identical to the textbook loop
// kept in core/reference_schedulers.hpp.
#pragma once

#include "core/scheduler.hpp"
#include "core/scheduler_workspace.hpp"
#include "core/step_schedule.hpp"

namespace hcs {

/// The greedy step composition. The number of steps can exceed P when
/// steps are incomplete. Exposed for tests and the dependence-graph
/// analysis.
[[nodiscard]] StepSchedule greedy_steps(const CommMatrix& comm);

/// As above with a caller-owned workspace, for hot paths that re-schedule
/// repeatedly; a warmed workspace makes the composition allocation-free
/// apart from the returned steps.
[[nodiscard]] StepSchedule greedy_steps(const CommMatrix& comm,
                                        SchedulerWorkspace& workspace);

/// Scheduler wrapping greedy_steps under asynchronous execution. The
/// instance owns a workspace reused across schedule() calls, making
/// repeated re-scheduling (the §6.2 adaptivity loop) allocation-free in
/// the composition; consequently a single instance is not thread-safe.
class GreedyScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "greedy"; }
  [[nodiscard]] Schedule schedule(const CommMatrix& comm) const override;

 private:
  mutable SchedulerWorkspace workspace_;  // scratch, not logical state
};

}  // namespace hcs
