#include "core/comm_matrix.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hcs {

CommMatrix::CommMatrix(Matrix<double> times) : times_(std::move(times)) {
  if (!times_.square() || times_.empty())
    throw InputError("CommMatrix: time matrix must be square and non-empty");
  times_.for_each([](std::size_t r, std::size_t c, double& t) {
    if (t < 0.0) throw InputError("CommMatrix: negative event time");
    if (r == c && t != 0.0)
      throw InputError("CommMatrix: diagonal must be zero");
  });
}

namespace {

Matrix<double> build_times(const NetworkModel& network,
                           const MessageMatrix& messages) {
  if (messages.rows() != network.processor_count() ||
      messages.cols() != network.processor_count())
    throw InputError("CommMatrix: message matrix does not match network size");
  return network.cost_matrix(messages);
}

}  // namespace

CommMatrix::CommMatrix(const NetworkModel& network, const MessageMatrix& messages)
    : CommMatrix(build_times(network, messages)) {}

double CommMatrix::lower_bound() const {
  double bound = 0.0;
  for (std::size_t p = 0; p < processor_count(); ++p)
    bound = std::max({bound, send_total(p), recv_total(p)});
  return bound;
}

}  // namespace hcs
