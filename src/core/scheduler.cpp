#include "core/scheduler.hpp"

#include "core/baseline.hpp"
#include "core/greedy_scheduler.hpp"
#include "core/matching_scheduler.hpp"
#include "core/openshop_scheduler.hpp"
#include "core/random_scheduler.hpp"
#include "util/error.hpp"

namespace hcs {

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind, std::uint64_t seed) {
  switch (kind) {
    case SchedulerKind::kBaseline:
      return std::make_unique<BaselineScheduler>();
    case SchedulerKind::kBaselineBarrier:
      return std::make_unique<BarrierBaselineScheduler>();
    case SchedulerKind::kMaxMatching:
      return std::make_unique<MatchingScheduler>(MatchingObjective::kMaxWeight);
    case SchedulerKind::kMinMatching:
      return std::make_unique<MatchingScheduler>(MatchingObjective::kMinWeight);
    case SchedulerKind::kGreedy:
      return std::make_unique<GreedyScheduler>();
    case SchedulerKind::kOpenShop:
      return std::make_unique<OpenShopScheduler>();
    case SchedulerKind::kRandom:
      return std::make_unique<RandomScheduler>(seed);
  }
  throw InputError("make_scheduler: unknown kind");
}

std::string_view scheduler_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kBaseline: return "baseline";
    case SchedulerKind::kBaselineBarrier: return "baseline-barrier";
    case SchedulerKind::kMaxMatching: return "max-matching";
    case SchedulerKind::kMinMatching: return "min-matching";
    case SchedulerKind::kGreedy: return "greedy";
    case SchedulerKind::kOpenShop: return "openshop";
    case SchedulerKind::kRandom: return "random";
  }
  throw InputError("scheduler_name: unknown kind");
}

const std::vector<SchedulerKind>& paper_schedulers() {
  static const std::vector<SchedulerKind> kinds = {
      SchedulerKind::kBaseline, SchedulerKind::kMaxMatching,
      SchedulerKind::kMinMatching, SchedulerKind::kGreedy,
      SchedulerKind::kOpenShop};
  return kinds;
}

}  // namespace hcs
