#include "core/openshop_scheduler.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "util/error.hpp"

namespace hcs {

Schedule OpenShopScheduler::schedule(const CommMatrix& comm) const {
  const std::size_t n = comm.processor_count();
  return schedule_with_availability(comm, std::vector<double>(n, 0.0),
                                    std::vector<double>(n, 0.0));
}

Schedule OpenShopScheduler::schedule_with_availability(
    const CommMatrix& comm, const std::vector<double>& initial_send,
    const std::vector<double>& initial_recv) const {
  const std::size_t n = comm.processor_count();
  check(initial_send.size() == n && initial_recv.size() == n,
        "OpenShopScheduler: availability vector size mismatch");

  // Receiver sets R_i: receivers sender i still has to serve.
  std::vector<std::vector<std::size_t>> receiver_set(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j) receiver_set[i].push_back(j);

  std::vector<double> recv_avail = initial_recv;

  // Senders ordered by availability time; ties resolve toward the lower
  // index ("processed in an arbitrary order" — fixed for determinism).
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> senders;
  for (std::size_t i = 0; i < n; ++i)
    if (!receiver_set[i].empty()) senders.push({initial_send[i], i});

  std::vector<ScheduledEvent> events;
  events.reserve(n * (n - 1));

  while (!senders.empty()) {
    const auto [avail, sender] = senders.top();
    senders.pop();

    // Earliest available receiver in R_sender; ties toward lower index.
    auto& candidates = receiver_set[sender];
    std::size_t best_pos = 0;
    for (std::size_t pos = 1; pos < candidates.size(); ++pos)
      if (recv_avail[candidates[pos]] < recv_avail[candidates[best_pos]])
        best_pos = pos;
    const std::size_t receiver = candidates[best_pos];
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(best_pos));

    const double start = std::max(avail, recv_avail[receiver]);
    const double finish = start + comm.time(sender, receiver);
    events.push_back({sender, receiver, start, finish});
    recv_avail[receiver] = finish;
    if (!candidates.empty()) senders.push({finish, sender});
  }
  return Schedule{n, std::move(events)};
}

}  // namespace hcs
