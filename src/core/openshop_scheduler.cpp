#include "core/openshop_scheduler.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/error.hpp"
#include "util/simd_argmin.hpp"

namespace hcs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// All three loop bodies below play the same textbook game
// (reference_openshop_schedule): repeatedly take the earliest-available
// sender (ties to the lowest index), match it with the earliest-available
// receiver it has not served (ties to the lowest index), emit the event,
// and advance both ports to the finish time. They differ only in how the
// two argmins are computed, and all produce bit-identical schedules.
//
// State layout shared by every path: send_time / recv_avail are flat
// per-port availability arrays (padded with +inf beyond n for the SIMD
// paths), cand is a sender-major bitset of not-yet-served receivers, and
// remaining counts each sender's outstanding sends.

/// Scalar fallback: per event, one strict-< word-walk argmin per side.
/// O(P) per event like the reference, but flat and branch-light — and
/// the executable specification the SIMD paths are tested against.
void openshop_loop_scalar(const CommMatrix& comm, std::size_t n,
                          double* send_time, double* recv_avail,
                          std::uint64_t* cand, std::uint64_t* active,
                          std::uint32_t* remaining, ScheduledEvent* out) {
  const std::size_t words = (n + 63) / 64;
  const std::size_t total = n * (n - 1);
  for (std::size_t ne = 0; ne < total; ++ne) {
    std::size_t s = 0;
    double best = kInf;
    for (std::size_t w = 0; w < words; ++w) {
      for (std::uint64_t bits = active[w]; bits != 0; bits &= bits - 1) {
        const std::size_t i =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        if (send_time[i] < best) best = send_time[i], s = i;
      }
    }
    const std::uint64_t* row = cand + s * words;
    std::size_t r = 0;
    double rv = kInf;
    for (std::size_t w = 0; w < words; ++w) {
      for (std::uint64_t bits = row[w]; bits != 0; bits &= bits - 1) {
        const std::size_t i =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        if (recv_avail[i] < rv) rv = recv_avail[i], r = i;
      }
    }
    const double start = std::max(send_time[s], rv);
    const double finish = start + comm.time(s, r);
    out[ne] = {s, r, start, finish};
    cand[s * words + (r >> 6)] &= ~(std::uint64_t{1} << (r & 63));
    recv_avail[r] = finish;
    if (--remaining[s] > 0)
      send_time[s] = finish;
    else
      active[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
  }
}

#if HCS_SIMD_ARGMIN_X86

// The SIMD loops hide both argmins behind speculation so neither sits on
// the per-event critical path:
//
//  * Sender side: the argmin over "every active sender but the current
//    one" does not depend on the current event, so it issues immediately
//    and the true next sender falls out of one scalar compare against
//    the current sender's finish time (ties to the lower index).
//  * Receiver side: the next event's receiver argmin is issued at the
//    end of the current iteration with the just-updated receiver's lane
//    masked out; the one excluded lane is resolved by a single scalar
//    compare at the top of the next iteration, under the same tie rule.

/// Fixed-width loop for n <= 64: one mask word per side, fully unrolled
/// argmins. ~80 cycles per event on AVX-512 hardware.
__attribute__((target("avx512f,avx512dq")))
void openshop_loop64(const CommMatrix& comm, std::size_t n,
                     double* send_time, double* recv_avail,
                     std::uint64_t* cand, std::uint32_t* remaining,
                     ScheduledEvent* out) {
  std::uint64_t sendmask = n >= 64 ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << n) - 1;
  const std::size_t total = n * (n - 1);
  std::size_t ne = 0;
  std::size_t s = simd::argmin64(send_time, sendmask).index;
  simd::MinLoc rs = simd::argmin64(recv_avail, cand[s]);
  std::size_t r_prev = ~std::size_t{0};  // lane excluded from rs, if any
  double finish_prev = 0.0;
  while (ne < total) {
    std::size_t r = rs.index;
    double rv = rs.value;
    if (r_prev < 64 && ((cand[s] >> r_prev) & 1) &&
        (finish_prev < rv || (finish_prev == rv && r_prev < r))) {
      r = r_prev;
      rv = finish_prev;
    }
    const double avail = send_time[s];
    const std::uint64_t others = sendmask & ~(std::uint64_t{1} << s);
    const std::size_t s2 =
        others != 0 ? simd::argmin64(send_time, others).index : s;
    const double start = avail > rv ? avail : rv;
    const double finish = start + comm.time(s, r);
    out[ne++] = {s, r, start, finish};
    cand[s] &= ~(std::uint64_t{1} << r);
    recv_avail[r] = finish;
    std::size_t snext;
    if (--remaining[s] > 0) {
      send_time[s] = finish;
      const double t2 = send_time[s2];
      snext = (s2 != s && (t2 < finish || (t2 == finish && s2 < s))) ? s2 : s;
    } else {
      send_time[s] = kInf;
      sendmask &= ~(std::uint64_t{1} << s);
      snext = s2;
    }
    if (ne >= total) break;
    rs = simd::argmin64(recv_avail, cand[snext] & ~(std::uint64_t{1} << r));
    r_prev = r;
    finish_prev = finish;
    s = snext;
  }
}

/// Word-array variant of openshop_loop64 for n > 64. Identical structure;
/// masks span `words` words and the speculative argmin inputs are built
/// in the two scratch rows.
__attribute__((target("avx512f,avx512dq")))
void openshop_loop_wide(const CommMatrix& comm, std::size_t n,
                        double* send_time, double* recv_avail,
                        std::uint64_t* cand, std::uint64_t* active,
                        std::uint64_t* scratch_send,
                        std::uint64_t* scratch_recv,
                        std::uint32_t* remaining, ScheduledEvent* out) {
  const std::size_t words = (n + 63) / 64;
  const std::size_t total = n * (n - 1);
  std::size_t active_senders = n;
  std::size_t ne = 0;
  std::size_t s = simd::argmin_wide(send_time, active, words).index;
  simd::MinLoc rs = simd::argmin_wide(recv_avail, cand + s * words, words);
  std::size_t r_prev = ~std::size_t{0};
  double finish_prev = 0.0;
  while (ne < total) {
    std::uint64_t* row = cand + s * words;
    std::size_t r = rs.index;
    double rv = rs.value;
    if (r_prev != ~std::size_t{0} &&
        ((row[r_prev >> 6] >> (r_prev & 63)) & 1) &&
        (finish_prev < rv || (finish_prev == rv && r_prev < r))) {
      r = r_prev;
      rv = finish_prev;
    }
    const double avail = send_time[s];
    std::size_t s2 = s;
    if (active_senders > 1) {
      for (std::size_t w = 0; w < words; ++w) scratch_send[w] = active[w];
      scratch_send[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
      s2 = simd::argmin_wide(send_time, scratch_send, words).index;
    }
    const double start = avail > rv ? avail : rv;
    const double finish = start + comm.time(s, r);
    out[ne++] = {s, r, start, finish};
    row[r >> 6] &= ~(std::uint64_t{1} << (r & 63));
    recv_avail[r] = finish;
    std::size_t snext;
    if (--remaining[s] > 0) {
      send_time[s] = finish;
      const double t2 = send_time[s2];
      snext = (s2 != s && (t2 < finish || (t2 == finish && s2 < s))) ? s2 : s;
    } else {
      send_time[s] = kInf;
      active[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
      --active_senders;
      snext = s2;
    }
    if (ne >= total) break;
    const std::uint64_t* next_row = cand + snext * words;
    for (std::size_t w = 0; w < words; ++w) scratch_recv[w] = next_row[w];
    scratch_recv[r >> 6] &= ~(std::uint64_t{1} << (r & 63));
    rs = simd::argmin_wide(recv_avail, scratch_recv, words);
    r_prev = r;
    finish_prev = finish;
    s = snext;
  }
}

#endif  // HCS_SIMD_ARGMIN_X86

}  // namespace

Schedule OpenShopScheduler::schedule(const CommMatrix& comm) const {
  const std::size_t n = comm.processor_count();
  return schedule_with_availability(comm, std::vector<double>(n, 0.0),
                                    std::vector<double>(n, 0.0));
}

Schedule OpenShopScheduler::schedule_with_availability(
    const CommMatrix& comm, const std::vector<double>& initial_send,
    const std::vector<double>& initial_recv) const {
  SchedulerWorkspace& ws = workspace_;
  const std::size_t n = comm.processor_count();
  check(initial_send.size() == n && initial_recv.size() == n,
        "OpenShopScheduler: availability vector size mismatch");
  if (n <= 1) return Schedule{n, {}};

  const std::size_t words = (n + 63) / 64;
  const std::size_t padded = words * 64;

  // Availability arrays, padded with +inf so masked-off SIMD lanes hold
  // values that can never win an argmin.
  ws.send_avail.assign(padded, kInf);
  ws.recv_avail.assign(padded, kInf);
  std::copy(initial_send.begin(), initial_send.end(), ws.send_avail.begin());
  std::copy(initial_recv.begin(), initial_recv.end(), ws.recv_avail.begin());

  // Active senders: one bit per processor; padding bits stay zero.
  ws.active_words.assign(words, ~std::uint64_t{0});
  if (n % 64 != 0)
    ws.active_words[words - 1] = (std::uint64_t{1} << (n % 64)) - 1;

  // Candidate receivers: every receiver but self — the active template
  // with the sender's own bit cleared.
  ws.cand_bits.resize(n * words);
  for (std::size_t s = 0; s < n; ++s) {
    std::uint64_t* row = ws.cand_bits.data() + s * words;
    for (std::size_t w = 0; w < words; ++w) row[w] = ws.active_words[w];
    row[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
  }
  ws.mask_scratch.assign(2 * words, 0);
  ws.remaining32.assign(n, static_cast<std::uint32_t>(n - 1));

  std::vector<ScheduledEvent> events(n * (n - 1));
#if HCS_SIMD_ARGMIN_X86
  if (simd::has_avx512()) {
    if (n <= 64)
      openshop_loop64(comm, n, ws.send_avail.data(), ws.recv_avail.data(),
                      ws.cand_bits.data(), ws.remaining32.data(),
                      events.data());
    else
      openshop_loop_wide(comm, n, ws.send_avail.data(), ws.recv_avail.data(),
                         ws.cand_bits.data(), ws.active_words.data(),
                         ws.mask_scratch.data(),
                         ws.mask_scratch.data() + words,
                         ws.remaining32.data(), events.data());
    return Schedule{n, std::move(events)};
  }
#endif
  openshop_loop_scalar(comm, n, ws.send_avail.data(), ws.recv_avail.data(),
                       ws.cand_bits.data(), ws.active_words.data(),
                       ws.remaining32.data(), events.data());
  return Schedule{n, std::move(events)};
}

}  // namespace hcs
