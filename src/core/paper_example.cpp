#include "core/paper_example.hpp"

namespace hcs {

CommMatrix paper_example_comm() {
  // (src, dst) indexed; seconds. The bottleneck is t_lb = 22 s (sender
  // P2's send total ties receiver P3's receive total). On this instance
  // the algorithms separate exactly as the paper's §4–5 narrative
  // describes: the baseline's fixed pattern scatters the long events
  // across steps and pays 1.41 x t_lb; the max-matching schedule groups
  // events of similar length (1.05 x); greedy lands between (1.14 x);
  // and the open-shop heuristic matches the lower bound, which the exact
  // branch-and-bound solver proves optimal.
  return CommMatrix{Matrix<double>{
      {0, 1, 4, 7, 1},
      {2, 0, 5, 1, 1},
      {8, 8, 0, 5, 1},
      {9, 5, 1, 0, 6},
      {1, 3, 2, 9, 0},
  }};
}

}  // namespace hcs
