#include "core/matching_scheduler.hpp"

namespace hcs {

StepSchedule matching_steps(const CommMatrix& comm,
                            MatchingObjective objective) {
  LapSolver solver;
  return matching_steps(comm, objective, solver);
}

StepSchedule matching_steps(const CommMatrix& comm,
                            MatchingObjective objective, LapSolver& solver) {
  const std::size_t n = comm.processor_count();
  const std::vector<std::vector<std::size_t>> matchings =
      decompose_into_matchings(comm.times(), objective, solver);

  std::vector<std::vector<CommEvent>> steps;
  steps.reserve(matchings.size());
  for (const auto& matching : matchings) {
    std::vector<CommEvent> step;
    step.reserve(n);
    for (std::size_t src = 0; src < n; ++src) {
      const std::size_t dst = matching[src];
      // A matching may pair a processor with itself (the zero-cost
      // diagonal); that is a no-op, not a communication event.
      if (src != dst) step.push_back({src, dst});
    }
    if (!step.empty()) steps.push_back(std::move(step));
  }
  return StepSchedule{n, std::move(steps)};
}

Schedule MatchingScheduler::schedule(const CommMatrix& comm) const {
  return execute_async(matching_steps(comm, objective_, solver_), comm);
}

}  // namespace hcs
