#include "core/step_schedule.hpp"

#include <algorithm>

#include "core/scheduler_workspace.hpp"
#include "util/error.hpp"

namespace hcs {

StepSchedule::StepSchedule(std::size_t processor_count,
                           std::vector<std::vector<CommEvent>> steps)
    : processor_count_(processor_count), steps_(std::move(steps)) {
  if (processor_count_ == 0) throw InputError("StepSchedule: zero processors");
  for (const auto& step : steps_) {
    std::vector<bool> sends(processor_count_, false);
    std::vector<bool> receives(processor_count_, false);
    for (const CommEvent& event : step) {
      if (event.src >= processor_count_ || event.dst >= processor_count_)
        throw InputError("StepSchedule: processor index out of range");
      if (event.src == event.dst)
        throw InputError("StepSchedule: self-message");
      if (sends[event.src])
        throw InputError("StepSchedule: sender appears twice in one step");
      if (receives[event.dst])
        throw InputError("StepSchedule: receiver appears twice in one step");
      sends[event.src] = true;
      receives[event.dst] = true;
    }
  }
}

std::size_t StepSchedule::event_count() const {
  std::size_t count = 0;
  for (const auto& step : steps_) count += step.size();
  return count;
}

bool StepSchedule::covers_total_exchange() const {
  Matrix<int> covered(processor_count_, processor_count_, 0);
  std::size_t count = 0;
  for (const auto& step : steps_) {
    for (const CommEvent& event : step) {
      if (covered(event.src, event.dst) != 0) return false;
      covered(event.src, event.dst) = 1;
      ++count;
    }
  }
  return count == processor_count_ * (processor_count_ - 1);
}

namespace {

Schedule execute(const StepSchedule& steps, const CommMatrix& comm,
                 bool barrier, std::vector<double>& send_avail,
                 std::vector<double>& recv_avail) {
  check(steps.processor_count() == comm.processor_count(),
        "execute: step schedule and communication matrix sizes differ");
  const std::size_t n = steps.processor_count();
  send_avail.assign(n, 0.0);
  recv_avail.assign(n, 0.0);
  std::vector<ScheduledEvent> events;
  events.reserve(steps.event_count());

  double step_start = 0.0;
  for (const auto& step : steps.steps()) {
    double step_finish = step_start;
    for (const CommEvent& event : step) {
      double start = std::max(send_avail[event.src], recv_avail[event.dst]);
      if (barrier) start = std::max(start, step_start);
      const double finish = start + comm.time(event.src, event.dst);
      events.push_back({event.src, event.dst, start, finish});
      send_avail[event.src] = finish;
      recv_avail[event.dst] = finish;
      step_finish = std::max(step_finish, finish);
    }
    if (barrier) step_start = step_finish;
  }
  return Schedule{n, std::move(events)};
}

}  // namespace

Schedule execute_async(const StepSchedule& steps, const CommMatrix& comm) {
  std::vector<double> send_avail, recv_avail;
  return execute(steps, comm, /*barrier=*/false, send_avail, recv_avail);
}

Schedule execute_barrier(const StepSchedule& steps, const CommMatrix& comm) {
  std::vector<double> send_avail, recv_avail;
  return execute(steps, comm, /*barrier=*/true, send_avail, recv_avail);
}

Schedule execute_async(const StepSchedule& steps, const CommMatrix& comm,
                       SchedulerWorkspace& workspace) {
  return execute(steps, comm, /*barrier=*/false, workspace.send_avail,
                 workspace.recv_avail);
}

Schedule execute_barrier(const StepSchedule& steps, const CommMatrix& comm,
                         SchedulerWorkspace& workspace) {
  return execute(steps, comm, /*barrier=*/true, workspace.send_avail,
                 workspace.recv_avail);
}

}  // namespace hcs
