// Reusable scheduler workspace.
//
// Schedule construction is a hot path just like schedule execution: every
// checkpoint round of run_adaptive / run_resilient and every repetition
// of the experiment sweeps re-runs a scheduler, and §6.2's economics only
// work if computing a schedule stays cheap next to the exchange it saves.
// A SchedulerWorkspace owns all the scratch the greedy and open-shop
// schedulers (and the step executor behind the baseline and random
// schedulers) need — per-sender rank lists, flat bitsets, indexed time
// heaps, availability arrays — as flat structures cleared, never shrunk,
// between runs. After the first schedule at a given processor count a
// scheduler performs zero heap allocation outside its returned result.
// This is the same warm-workspace pattern LapSolver applies to the
// matching schedulers and SimWorkspace to the simulator.
//
// The workspace is pure scratch: it carries no results and no semantics,
// and any call may be handed a freshly constructed workspace with
// bit-identical output. Not thread-safe: one workspace per thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hcs {

class CommMatrix;
class StepSchedule;
class Schedule;
class SchedulerWorkspace;
class OpenShopScheduler;

StepSchedule greedy_steps(const CommMatrix& comm, SchedulerWorkspace& workspace);
Schedule execute_async(const StepSchedule& steps, const CommMatrix& comm,
                       SchedulerWorkspace& workspace);
Schedule execute_barrier(const StepSchedule& steps, const CommMatrix& comm,
                         SchedulerWorkspace& workspace);

namespace detail {

/// Flat word-backed bitset, cleared (never shrunk) between uses. The
/// greedy scheduler tracks per-step claimed receivers and per-sender
/// not-yet-sent rank positions this way: testing membership is one word
/// probe, and scanning for the next candidate walks set bits with a
/// count-trailing-zeros per word instead of re-scanning a list.
class FlatBitset {
 public:
  /// Sizes for n bits and clears them all.
  void reset(std::size_t n) {
    words_.assign((n + 63) / 64, 0);
  }

  /// Clears all bits, keeping the current size.
  void clear_all() {
    for (std::uint64_t& word : words_) word = 0;
  }

  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void clear(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  [[nodiscard]] std::size_t word_count() const noexcept {
    return words_.size();
  }
  [[nodiscard]] std::uint64_t word(std::size_t w) const { return words_[w]; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return words_.capacity() * 64;
  }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace detail

/// All scratch storage one schedule construction needs, reusable across
/// runs and across scheduler kinds. See the file comment for the contract.
class SchedulerWorkspace {
 public:
  SchedulerWorkspace() = default;

  /// High-water marks of the warmed scratch storage, for observability.
  /// Capacities, not sizes; reading them costs nothing on the hot path.
  struct Footprint {
    std::size_t rank_entries = 0;      ///< flat per-sender rank lists
    std::size_t bitset_bits = 0;       ///< candidate/claimed/avail bitsets
    std::size_t scalar_entries = 0;    ///< availability and order arrays
  };

  [[nodiscard]] Footprint footprint() const noexcept {
    Footprint f;
    f.rank_entries = ranked.capacity();
    f.bitset_bits = claimed.capacity() +
                    (avail_bits.capacity() + cand_bits.capacity() +
                     active_words.capacity() + mask_scratch.capacity()) *
                        64;
    f.scalar_entries = send_avail.capacity() + recv_avail.capacity() +
                       time_rows.capacity() + remaining.capacity() +
                       remaining32.capacity() + order.capacity() +
                       next_order.capacity() + idled.capacity();
    return f;
  }

 private:
  friend class OpenShopScheduler;
  friend StepSchedule greedy_steps(const CommMatrix& comm,
                                   SchedulerWorkspace& workspace);
  friend Schedule execute_async(const StepSchedule& steps,
                                const CommMatrix& comm,
                                SchedulerWorkspace& workspace);
  friend Schedule execute_barrier(const StepSchedule& steps,
                                  const CommMatrix& comm,
                                  SchedulerWorkspace& workspace);

  // Greedy: flat rank lists (sender-major, n-1 entries per sender),
  // per-sender not-yet-sent bitsets over rank positions (word-aligned per
  // sender), the per-step claimed-receiver bitset, and the rotating
  // traversal order with its scratch.
  std::vector<std::uint32_t> ranked;
  std::vector<std::uint64_t> avail_bits;
  detail::FlatBitset claimed;
  std::vector<std::size_t> remaining;
  std::vector<std::size_t> order;
  std::vector<std::size_t> next_order;
  std::vector<std::size_t> idled;

  // Open shop: sender-major candidate-receiver bitsets (bit (s, r) set =
  // s has not yet sent to r), the active-sender word mask, and scratch
  // words for building the masked argmin inputs of one selection.
  std::vector<std::uint64_t> cand_bits;
  std::vector<std::uint64_t> active_words;
  std::vector<std::uint64_t> mask_scratch;
  std::vector<std::uint32_t> remaining32;

  // Shared: per-port availability arrays (greedy executor + open shop;
  // the open-shop SIMD path pads them to a 64-lane multiple), and the
  // lane-padded copy of C's rows the greedy SIMD path scans when the
  // processor count is not itself a lane multiple.
  std::vector<double> send_avail;
  std::vector<double> recv_avail;
  std::vector<double> time_rows;
};

}  // namespace hcs
