// Exact (branch-and-bound) total-exchange scheduler for small P.
//
// TOT_EXCH is NP-complete (Theorem 1), so this solver exists only to
// validate the heuristics: tests compare heuristic completion times
// against the true optimum on small instances (P <= 5).
//
// Method: for any valid schedule, list-scheduling its events in order of
// their start times — placing each event at
// max(send_avail[src], recv_avail[dst]) — reproduces a schedule that is
// no longer. The optimum is therefore the minimum over event
// permutations of the list-scheduled makespan, which we search with
// branch-and-bound: the bound at a node is the largest
// "avail + remaining work" over all send and receive ports, and the
// incumbent starts at the best heuristic schedule.
#pragma once

#include <cstdint>
#include <optional>

#include "core/comm_matrix.hpp"
#include "core/schedule.hpp"

namespace hcs {

/// Result of an exact search.
struct ExactResult {
  Schedule schedule;        ///< best schedule found
  bool proven_optimal;      ///< true unless the node budget was exhausted
  std::uint64_t nodes = 0;  ///< branch-and-bound nodes expanded
};

/// Searches for an optimal schedule of `comm`. Exponential in the worst
/// case — intended for P <= 5. `node_budget` caps the search; when it is
/// exhausted the best schedule found so far is returned with
/// proven_optimal == false.
[[nodiscard]] ExactResult solve_exact(const CommMatrix& comm,
                                      std::uint64_t node_budget = 20'000'000);

}  // namespace hcs
