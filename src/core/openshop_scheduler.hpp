// Open-shop list scheduler (§4.5).
//
// Total-exchange scheduling is an open shop problem: senders are jobs,
// receivers are machines, and every (sender, receiver) operation exists.
// The heuristic treats each processor as an independent sender and
// receiver; whenever a sender becomes available it greedily claims the
// earliest-available receiver remaining in its receiver set. Senders are
// processed strictly in order of availability time.
//
// The implementation reduces both selections — earliest available
// sender, earliest available unserved receiver — to masked argmins over
// flat availability arrays held in a SchedulerWorkspace. On AVX-512
// hardware the argmins run branch-free (util/simd_argmin.hpp) and are
// speculated off the per-event critical path: the next sender is chosen
// against a precomputed runner-up, and the next event's receiver argmin
// issues one iteration early with the just-updated lane resolved by a
// single compare. Elsewhere a scalar bit-walk computes the same argmins.
// Either way the loop does no steady-state allocation and its output is
// bit-identical to the textbook O(P^3) loop kept in
// core/reference_schedulers.hpp.
//
// Theorem 3: the resulting completion time is within twice the lower
// bound — the idle time of the last-finishing sender is covered by its
// final receiver's busy time, so the makespan is at most one column sum
// plus one row sum of C.
#pragma once

#include "core/scheduler.hpp"
#include "core/scheduler_workspace.hpp"

namespace hcs {

/// Open-shop list scheduler. Produces a timed schedule directly (it is
/// not step-structured); the output passes Schedule::validate.
///
/// Also availability-aware: the greedy sender-availability loop extends
/// naturally to ports that free at different times, which is what
/// checkpoint-based rescheduling needs (§6.3).
class OpenShopScheduler final : public Scheduler,
                                public AvailabilityAwareScheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "openshop"; }
  [[nodiscard]] Schedule schedule(const CommMatrix& comm) const override;
  [[nodiscard]] Schedule schedule_with_availability(
      const CommMatrix& comm, const std::vector<double>& send_avail,
      const std::vector<double>& recv_avail) const override;

 private:
  mutable SchedulerWorkspace workspace_;  // scratch, not logical state
};

}  // namespace hcs
