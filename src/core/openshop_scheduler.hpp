// Open-shop list scheduler (§4.5).
//
// Total-exchange scheduling is an open shop problem: senders are jobs,
// receivers are machines, and every (sender, receiver) operation exists.
// The heuristic treats each processor as an independent sender and
// receiver; whenever a sender becomes available it greedily claims the
// earliest-available receiver remaining in its receiver set. Senders are
// processed strictly in order of availability time. Complexity O(P^3).
//
// Theorem 3: the resulting completion time is within twice the lower
// bound — the idle time of the last-finishing sender is covered by its
// final receiver's busy time, so the makespan is at most one column sum
// plus one row sum of C.
#pragma once

#include "core/scheduler.hpp"

namespace hcs {

/// Open-shop list scheduler. Produces a timed schedule directly (it is
/// not step-structured); the output passes Schedule::validate.
///
/// Also availability-aware: the greedy sender-availability loop extends
/// naturally to ports that free at different times, which is what
/// checkpoint-based rescheduling needs (§6.3).
class OpenShopScheduler final : public Scheduler,
                                public AvailabilityAwareScheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "openshop"; }
  [[nodiscard]] Schedule schedule(const CommMatrix& comm) const override;
  [[nodiscard]] Schedule schedule_with_availability(
      const CommMatrix& comm, const std::vector<double>& send_avail,
      const std::vector<double>& recv_avail) const override;
};

}  // namespace hcs
