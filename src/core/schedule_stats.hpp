// Schedule analysis and reporting.
//
// Beyond the completion time, users diagnosing a schedule want to know
// *where* the time goes: per-port utilization, who the bottleneck
// processor is, and how far the schedule sits from its lower bound. This
// module computes those summaries and renders them as tables, and exports
// schedules in a Gantt-friendly CSV for external plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "core/comm_matrix.hpp"
#include "core/schedule.hpp"
#include "util/table.hpp"

namespace hcs {

/// Per-processor accounting over one schedule.
struct ProcessorStats {
  std::size_t processor = 0;
  double send_busy_s = 0.0;
  double recv_busy_s = 0.0;
  /// Busy fraction of the schedule's makespan, per port.
  double send_utilization = 0.0;
  double recv_utilization = 0.0;
  /// Time of this processor's last activity (send or receive finish).
  double last_active_s = 0.0;
};

/// Whole-schedule summary.
struct ScheduleStats {
  double completion_s = 0.0;
  double lower_bound_s = 0.0;
  double ratio_to_lower_bound = 1.0;
  /// Processor whose port total equals the lower bound (the bottleneck).
  std::size_t bottleneck_processor = 0;
  /// Mean port utilization across processors and both ports.
  double mean_utilization = 0.0;
  std::vector<ProcessorStats> processors;
};

/// Computes the summary. `schedule` must be valid for `comm`.
[[nodiscard]] ScheduleStats analyze_schedule(const Schedule& schedule,
                                             const CommMatrix& comm);

/// Renders the per-processor rows as a Table.
[[nodiscard]] Table stats_table(const ScheduleStats& stats);

/// Writes the schedule as Gantt CSV: one row per event with columns
/// src,dst,start_s,finish_s,duration_s — directly loadable by plotting
/// tools.
void write_gantt_csv(std::ostream& out, const Schedule& schedule);

}  // namespace hcs
