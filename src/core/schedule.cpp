#include "core/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace hcs {

Schedule::Schedule(std::size_t processor_count,
                   std::vector<ScheduledEvent> events)
    : processor_count_(processor_count), events_(std::move(events)) {
  if (processor_count_ == 0) throw InputError("Schedule: zero processors");
  for (const ScheduledEvent& event : events_) {
    if (event.src >= processor_count_ || event.dst >= processor_count_)
      throw InputError("Schedule: event processor index out of range");
    if (event.finish_s < event.start_s)
      throw InputError("Schedule: event finishes before it starts");
  }
}

double Schedule::completion_time() const {
  double latest = 0.0;
  for (const ScheduledEvent& event : events_)
    latest = std::max(latest, event.finish_s);
  return latest;
}

namespace {

std::vector<ScheduledEvent> filtered_sorted(
    const std::vector<ScheduledEvent>& events, bool by_sender,
    std::size_t processor) {
  std::vector<ScheduledEvent> result;
  for (const ScheduledEvent& event : events)
    if ((by_sender ? event.src : event.dst) == processor)
      result.push_back(event);
  std::sort(result.begin(), result.end(),
            [](const ScheduledEvent& a, const ScheduledEvent& b) {
              return a.start_s < b.start_s ||
                     (a.start_s == b.start_s && a.finish_s < b.finish_s);
            });
  return result;
}

using EventRefs = std::vector<const ScheduledEvent*>;

// All events grouped by one port side, each group in (start, finish)
// order — the same order filtered_sorted produces, but built in a single
// pass over the event list. The whole-schedule consumers (idle_profile,
// first_violation) use this instead of one filtered scan per processor,
// which would be O(P·E) = O(P³) at wide P.
std::vector<EventRefs> group_by_port(const std::vector<ScheduledEvent>& events,
                                     std::size_t processor_count,
                                     bool by_sender) {
  std::vector<EventRefs> groups(processor_count);
  for (const ScheduledEvent& event : events)
    groups[by_sender ? event.src : event.dst].push_back(&event);
  for (EventRefs& group : groups)
    std::sort(group.begin(), group.end(),
              [](const ScheduledEvent* a, const ScheduledEvent* b) {
                return a->start_s < b->start_s ||
                       (a->start_s == b->start_s && a->finish_s < b->finish_s);
              });
  return groups;
}

}  // namespace

std::vector<ScheduledEvent> Schedule::sender_events(std::size_t src) const {
  check(src < processor_count_, "Schedule: sender out of range");
  return filtered_sorted(events_, /*by_sender=*/true, src);
}

std::vector<ScheduledEvent> Schedule::receiver_events(std::size_t dst) const {
  check(dst < processor_count_, "Schedule: receiver out of range");
  return filtered_sorted(events_, /*by_sender=*/false, dst);
}

std::vector<ProcessorIdle> Schedule::idle_profile() const {
  std::vector<ProcessorIdle> profile(processor_count_);
  const auto accumulate = [](const EventRefs& events, double& busy,
                             double& idle) {
    double cursor = 0.0;
    for (const ScheduledEvent* event : events) {
      busy += event->duration();
      if (event->start_s > cursor) idle += event->start_s - cursor;
      cursor = std::max(cursor, event->finish_s);
    }
  };
  const auto by_sender = group_by_port(events_, processor_count_, true);
  const auto by_receiver = group_by_port(events_, processor_count_, false);
  for (std::size_t p = 0; p < processor_count_; ++p) {
    accumulate(by_sender[p], profile[p].send_busy_s, profile[p].send_idle_s);
    accumulate(by_receiver[p], profile[p].recv_busy_s, profile[p].recv_idle_s);
  }
  return profile;
}

namespace {

std::optional<std::string> find_overlap(const EventRefs& sorted,
                                        double tolerance, const char* port,
                                        std::size_t processor) {
  // Zero-duration events occupy no port time; skip them.
  const ScheduledEvent* previous = nullptr;
  for (const ScheduledEvent* event : sorted) {
    if (event->duration() <= tolerance) continue;
    if (previous != nullptr &&
        event->start_s < previous->finish_s - tolerance) {
      std::ostringstream message;
      message << "overlapping " << port << " events at processor " << processor
              << ": [" << previous->start_s << ", " << previous->finish_s
              << ") and [" << event->start_s << ", " << event->finish_s << ")";
      return message.str();
    }
    previous = event;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> Schedule::first_violation(const CommMatrix& comm,
                                                     double tolerance) const {
  const std::size_t n = processor_count_;
  if (comm.processor_count() != n)
    return "schedule and communication matrix sizes differ";

  // Coverage: exactly one event per ordered pair of distinct processors.
  Matrix<int> covered(n, n, 0);
  for (const ScheduledEvent& event : events_) {
    if (event.src == event.dst) return "self-message scheduled";
    if (event.start_s < -tolerance) return "event starts before time zero";
    if (covered(event.src, event.dst) != 0)
      return "duplicate event for a processor pair (message splitting?)";
    covered(event.src, event.dst) = 1;
    const double expected = comm.time(event.src, event.dst);
    if (std::abs(event.duration() - expected) >
        tolerance * std::max(1.0, expected))
      return "event duration does not match the communication matrix";
  }
  std::size_t expected_events = n * (n - 1);
  if (events_.size() != expected_events)
    return "schedule does not cover every processor pair exactly once";

  const auto by_sender = group_by_port(events_, n, true);
  const auto by_receiver = group_by_port(events_, n, false);
  for (std::size_t p = 0; p < n; ++p) {
    if (auto overlap = find_overlap(by_sender[p], tolerance, "send", p))
      return overlap;
    if (auto overlap = find_overlap(by_receiver[p], tolerance, "receive", p))
      return overlap;
  }
  return std::nullopt;
}

void Schedule::validate(const CommMatrix& comm, double tolerance) const {
  if (auto violation = first_violation(comm, tolerance))
    throw ScheduleError(*violation);
}

bool Schedule::is_valid(const CommMatrix& comm, double tolerance) const noexcept {
  return !first_violation(comm, tolerance).has_value();
}

std::string render_timing_diagram(const Schedule& schedule, std::size_t rows) {
  const std::size_t n = schedule.processor_count();
  const double makespan = schedule.completion_time();
  if (rows == 0) rows = 1;

  // Column width: enough for "->dd|".
  const std::size_t label_width = n > 10 ? 5 : 4;
  std::vector<std::string> grid(rows, std::string(n * label_width, ' '));

  for (const ScheduledEvent& event : schedule.events()) {
    if (makespan <= 0.0) break;
    auto row_of = [&](double t) {
      const double fraction = t / makespan;
      return std::min(rows - 1,
                      static_cast<std::size_t>(fraction * static_cast<double>(rows)));
    };
    const std::size_t first = row_of(event.start_s);
    // Half-open interval: the finish row is exclusive unless the event
    // would be invisible.
    std::size_t last = row_of(std::nexttoward(event.finish_s, 0.0));
    last = std::max(last, first);
    const std::size_t col = event.src * label_width;
    for (std::size_t r = first; r <= last; ++r) {
      std::string cell = (r == first)
                             ? ">" + std::to_string(event.dst)
                             : std::string("|");
      if (cell.size() > label_width - 1) cell.resize(label_width - 1);
      for (std::size_t k = 0; k < cell.size(); ++k) grid[r][col + k] = cell[k];
    }
  }

  std::ostringstream out;
  out << "time";
  for (std::size_t p = 0; p < n; ++p) {
    std::string header = "P" + std::to_string(p);
    header.resize(label_width, ' ');
    out << (p == 0 ? "  " : "") << header;
  }
  out << '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    const double t = makespan * static_cast<double>(r) / static_cast<double>(rows);
    char time_label[16];
    std::snprintf(time_label, sizeof time_label, "%5.1f ", t);
    out << time_label << grid[r] << '\n';
  }
  return out.str();
}

}  // namespace hcs
