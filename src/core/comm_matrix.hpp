// The communication matrix: per-pair event times for one total exchange.
//
// Entry (src, dst) is the time, in seconds, of the communication event
// from P_src to P_dst — computed as T_ij + m/B_ij from a network snapshot
// and a message-size matrix, or supplied directly. The diagonal is zero
// (paper §4.2: local copies are negligible).
//
// Note on indexing: the paper's matrix C uses C[i][j] = time of the event
// from P_j to P_i (receiver-major). This library uses sender-major
// (src, dst) indexing throughout; `row sums` are therefore send totals and
// `column sums` receive totals.
#pragma once

#include <cstddef>
#include <cstdint>

#include "netmodel/network_model.hpp"
#include "util/matrix.hpp"
#include "workload/generators.hpp"

namespace hcs {

/// Times of all P x P communication events of a total exchange.
class CommMatrix {
 public:
  /// From an explicit (src, dst)-indexed time matrix. Must be square, with
  /// non-negative entries and a zero diagonal.
  explicit CommMatrix(Matrix<double> times);

  /// From a network snapshot and per-pair message sizes:
  /// time(i, j) = T_ij + bytes(i, j) / B_ij for i != j, 0 on the diagonal.
  CommMatrix(const NetworkModel& network, const MessageMatrix& messages);

  [[nodiscard]] std::size_t processor_count() const noexcept {
    return times_.rows();
  }

  /// Duration of the event src -> dst, in seconds.
  [[nodiscard]] double time(std::size_t src, std::size_t dst) const {
    return times_(src, dst);
  }

  /// Total send time of processor i (sum of its outgoing events).
  [[nodiscard]] double send_total(std::size_t src) const {
    return times_.row_sum(src);
  }

  /// Total receive time of processor j (sum of its incoming events).
  [[nodiscard]] double recv_total(std::size_t dst) const {
    return times_.col_sum(dst);
  }

  /// The paper's lower bound t_lb on any schedule's completion time: the
  /// largest per-processor send or receive total. No schedule can finish
  /// earlier, because each processor sends (receives) serially.
  [[nodiscard]] double lower_bound() const;

  /// Underlying (src, dst)-indexed time matrix.
  [[nodiscard]] const Matrix<double>& times() const noexcept { return times_; }

 private:
  Matrix<double> times_;
};

}  // namespace hcs
