// The baseline "caterpillar" algorithm (§4.2).
//
// The standard total-exchange schedule for tightly coupled homogeneous
// systems: in step j (0 <= j < P), processor P_i sends to P_((i+j) mod P)
// (step 0 is the self-message and is skipped). With uniform event
// durations no contention arises; under heterogeneity long events in
// early steps delay later steps, and the completion time can reach
// (P/2) * t_lb (Theorem 2, tight).
#pragma once

#include "core/scheduler.hpp"
#include "core/scheduler_workspace.hpp"
#include "core/step_schedule.hpp"

namespace hcs {

/// The caterpillar step pattern: steps j = 1 .. P-1, step j pairing
/// P_i -> P_((i+j) mod P). Exposed separately so the dependence-graph
/// analysis and the barrier-execution ablation can reuse it.
[[nodiscard]] StepSchedule baseline_steps(std::size_t processor_count);

/// Baseline scheduler: caterpillar steps under asynchronous execution
/// (the paper's formal model — an event starts when both ports are free).
class BaselineScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "baseline"; }
  [[nodiscard]] Schedule schedule(const CommMatrix& comm) const override;

 private:
  mutable SchedulerWorkspace workspace_;  // scratch, not logical state
};

/// Caterpillar steps under step-synchronized execution: step k+1 starts
/// only after every event of step k has completed, as in loosely
/// synchronous homogeneous all-to-all implementations. Under
/// heterogeneity each step is held hostage by its slowest event, which is
/// what drives the large baseline gaps the paper's evaluation reports.
class BarrierBaselineScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "baseline-barrier";
  }
  [[nodiscard]] Schedule schedule(const CommMatrix& comm) const override;

 private:
  mutable SchedulerWorkspace workspace_;  // scratch, not logical state
};

}  // namespace hcs
