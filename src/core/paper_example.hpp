// The paper's running example (Figures 3–8).
//
// §4.2 introduces a 5-processor example communication problem whose
// timing diagram is Figure 3, and walks it through the baseline (Fig 4),
// max-matching (Fig 6), greedy (Fig 7), and open-shop (Fig 8) schedules,
// plus the baseline's dependence graph (Fig 5). The exact numeric entries
// are not recoverable from the published figure, so this module supplies
// a representative 5x5 matrix with the same qualitative structure — a
// heterogeneous mix of long and short events, zero diagonal — on which
// the algorithms display the same behaviours the paper narrates: the
// baseline's long early events delay later steps; the max-matching
// schedule groups events of similar length and is optimal here (a
// processor is busy for the entire schedule, matching Figure 6's
// property); greedy and open shop land close to the lower bound.
#pragma once

#include "core/comm_matrix.hpp"

namespace hcs {

/// The 5-processor running-example communication matrix, (src, dst)
/// indexed, times in seconds.
[[nodiscard]] CommMatrix paper_example_comm();

}  // namespace hcs
