// Random-permutation scheduler — an adaptivity-blind control.
//
// Applies the caterpillar structure after a random processor relabeling
// and with the step offsets in random order. Like the baseline it ignores
// event durations entirely; unlike the baseline its structure is not
// aligned with processor indices, which isolates how much of the adaptive
// schedulers' advantage comes from *looking at the durations* rather than
// from merely breaking the caterpillar's fixed pattern.
#pragma once

#include <cstdint>

#include "core/scheduler.hpp"
#include "core/scheduler_workspace.hpp"
#include "core/step_schedule.hpp"

namespace hcs {

/// Random relabeled-caterpillar steps, deterministic in (P, seed).
[[nodiscard]] StepSchedule random_steps(std::size_t processor_count,
                                        std::uint64_t seed);

/// Scheduler wrapping random_steps under asynchronous execution.
class RandomScheduler final : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : seed_(seed) {}

  [[nodiscard]] std::string_view name() const override { return "random"; }
  [[nodiscard]] Schedule schedule(const CommMatrix& comm) const override;

 private:
  std::uint64_t seed_;
  mutable SchedulerWorkspace workspace_;  // scratch, not logical state
};

}  // namespace hcs
