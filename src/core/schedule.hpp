// Timed communication schedules and their validity rules.
//
// A Schedule is the materialized form of the paper's timing diagram
// (§3.3): one rectangle per communication event, positioned in time. The
// validity rules (§3.4) are: events of the same sender must not overlap
// (one send port), events of the same receiver must not overlap (one
// receive port), every ordered pair of distinct processors is covered by
// exactly one event (no splitting, no combine-and-forward), and each
// event's duration equals its communication-matrix entry.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/comm_matrix.hpp"

namespace hcs {

/// One communication event placed in time.
struct ScheduledEvent {
  std::size_t src = 0;
  std::size_t dst = 0;
  double start_s = 0.0;
  double finish_s = 0.0;

  [[nodiscard]] double duration() const noexcept { return finish_s - start_s; }
  [[nodiscard]] bool operator==(const ScheduledEvent&) const = default;
};

/// Idle-time accounting for one processor within a schedule.
struct ProcessorIdle {
  double send_busy_s = 0.0;   ///< total time spent sending
  double send_idle_s = 0.0;   ///< gaps between sends, up to the last send
  double recv_busy_s = 0.0;   ///< total time spent receiving
  double recv_idle_s = 0.0;   ///< gaps between receives, up to the last receive
};

/// A complete timed schedule for one total exchange.
class Schedule {
 public:
  Schedule(std::size_t processor_count, std::vector<ScheduledEvent> events);

  [[nodiscard]] std::size_t processor_count() const noexcept {
    return processor_count_;
  }
  [[nodiscard]] const std::vector<ScheduledEvent>& events() const noexcept {
    return events_;
  }

  /// Time at which the last event completes.
  [[nodiscard]] double completion_time() const;

  /// Events sent by `src`, ordered by start time.
  [[nodiscard]] std::vector<ScheduledEvent> sender_events(std::size_t src) const;

  /// Events received by `dst`, ordered by start time.
  [[nodiscard]] std::vector<ScheduledEvent> receiver_events(std::size_t dst) const;

  /// Per-processor busy/idle breakdown.
  [[nodiscard]] std::vector<ProcessorIdle> idle_profile() const;

  /// Checks this schedule against all validity rules with respect to
  /// `comm`:
  ///  - exactly one event per ordered pair of distinct processors,
  ///  - no overlapping events per sender or per receiver,
  ///  - non-negative start times,
  ///  - every duration equal to comm.time(src, dst) within tolerance.
  /// Zero-duration events (zero-size or free messages) are exempt from the
  /// overlap rules — they occupy no port time. Returns a diagnostic for
  /// the first violation found, or nullopt when the schedule is valid.
  /// This is the single implementation of the rules: validate() and
  /// is_valid() are thin wrappers over it, so the throwing and
  /// non-throwing paths can never disagree on tolerance handling.
  [[nodiscard]] std::optional<std::string> first_violation(
      const CommMatrix& comm, double tolerance = 1e-9) const;

  /// Throws ScheduleError with first_violation()'s diagnostic, if any.
  void validate(const CommMatrix& comm, double tolerance = 1e-9) const;

  /// Like validate() but returns false instead of throwing.
  [[nodiscard]] bool is_valid(const CommMatrix& comm,
                              double tolerance = 1e-9) const noexcept;

 private:
  std::size_t processor_count_ = 0;
  std::vector<ScheduledEvent> events_;
};

/// Renders a schedule as an ASCII timing diagram in the paper's §3.3
/// style: one column per sender, time flowing downward, each event's cell
/// run labelled with its destination processor. Intended for small P
/// (columns get one label each); `rows` controls the vertical resolution.
[[nodiscard]] std::string render_timing_diagram(const Schedule& schedule,
                                                std::size_t rows = 24);

}  // namespace hcs
