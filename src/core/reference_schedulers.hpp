// Retained textbook implementations of the greedy (§4.4) and open-shop
// (§4.5) schedulers — the pre-workspace rescan loops, kept verbatim as
// executable specifications. The production schedulers in
// greedy_scheduler.cpp / openshop_scheduler.cpp restructure these loops
// around a SchedulerWorkspace (bitset scans, lazy receiver heaps) for
// speed; property tests pin the optimized output bit-identical to these
// references across seeds, the same discipline sim/reference_simulator
// applies to the simulator core.
//
// Reference code optimizes for obviousness, not speed: per-call
// allocations and O(P) rescans are deliberate.
#pragma once

#include <vector>

#include "core/schedule.hpp"
#include "core/step_schedule.hpp"

namespace hcs {

/// The §4.4 greedy step composition, as originally written: per-sender
/// ranked destination lists rescanned from the front every step.
[[nodiscard]] StepSchedule reference_greedy_steps(const CommMatrix& comm);

/// The §4.5 open-shop list schedule, as originally written: a
/// priority-queue of senders and a linear earliest-available-receiver
/// scan with erase-from-vector bookkeeping.
[[nodiscard]] Schedule reference_openshop_schedule(
    const CommMatrix& comm, const std::vector<double>& initial_send,
    const std::vector<double>& initial_recv);

}  // namespace hcs
