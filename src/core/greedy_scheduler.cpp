#include "core/greedy_scheduler.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "core/scheduler_workspace.hpp"
#include "util/error.hpp"
#include "util/simd_argmin.hpp"

namespace hcs {

#if HCS_SIMD_ARGMIN_X86
namespace {

// Out-of-line so the non-AVX composition loop can call them without
// carrying the target attribute itself; one call per pick is noise next
// to the masked scan it replaces.
__attribute__((target("avx512f,avx512dq")))
std::size_t pick_best64(const double* row, std::uint64_t mask) {
  return simd::argmax64(row, mask).index;
}

__attribute__((target("avx512f,avx512dq")))
std::size_t pick_best_wide(const double* row, const std::uint64_t* mask_words,
                           std::size_t words) {
  return simd::argmax_wide(row, mask_words, words).index;
}

}  // namespace
#endif  // HCS_SIMD_ARGMIN_X86

// The hot loop is the step composition: every step retries every
// unfinished sender for its best still-available destination. The
// textbook form (reference_greedy_steps) sorts per-sender rank lists and
// rescans each from the front, paying O(P) per sender per step for
// destinations that were sent long ago.
//
// "Next destination in rank order" is just "longest event among my
// pending, unclaimed destinations, ties to the lower index" — so on
// AVX-512 hardware no rank list is materialized at all: each pick is one
// branch-free masked argmax over the sender's row of C
// (util/simd_argmin.hpp) with candidate mask pending & ~claimed, and the
// per-call sort disappears entirely. Elsewhere the sorted-rank path
// keeps a bitset over each sender's rank positions (bit set = not yet
// sent), so a scan walks only still-pending destinations with a
// count-trailing-zeros per word. Both paths emit identical steps. All
// scratch lives in the workspace; a warmed call allocates only the
// returned steps.
StepSchedule greedy_steps(const CommMatrix& comm,
                          SchedulerWorkspace& workspace) {
  const std::size_t n = comm.processor_count();
  if (n <= 1) return StepSchedule{n, {}};
  const std::size_t deg = n - 1;  // destinations per sender

  workspace.remaining.assign(n, deg);
  std::size_t total_remaining = n * deg;

  // Traversal order for the next step, updated by the fairness rule:
  // idle processors pick first next step; otherwise the last picker goes
  // first. Relative order of the others is preserved. The claimed bitset
  // is free scratch here — it is cleared at the top of the next step
  // anyway — so it marks the idled set for the O(1) test.
  workspace.order.resize(n);
  std::iota(workspace.order.begin(), workspace.order.end(), 0);
  workspace.next_order.clear();
  workspace.idled.clear();
  workspace.claimed.reset(n);
  const auto advance_order = [&workspace](std::size_t last_picker) {
    workspace.next_order.clear();
    if (!workspace.idled.empty()) {
      workspace.claimed.clear_all();
      for (const std::size_t p : workspace.idled) workspace.claimed.set(p);
      workspace.next_order = workspace.idled;
      for (const std::size_t p : workspace.order)
        if (!workspace.claimed.test(p)) workspace.next_order.push_back(p);
    } else {
      workspace.next_order.push_back(last_picker);
      for (const std::size_t p : workspace.order)
        if (p != last_picker) workspace.next_order.push_back(p);
    }
    std::swap(workspace.order, workspace.next_order);
  };

  std::vector<std::vector<CommEvent>> steps;
  steps.reserve(n + 1);

#if HCS_SIMD_ARGMIN_X86
  if (simd::has_avx512()) {
    const std::size_t words = (n + 63) / 64;
    const std::size_t padded = words * 64;

    // Row pointers into C, padded so every argmax lane is readable. When
    // n is already a lane multiple the matrix itself is the buffer;
    // masked-off padding lanes never affect a pick either way.
    const double* rows;
    std::size_t stride;
    if (n == padded) {
      rows = comm.times().row(0).data();
      stride = n;
    } else {
      workspace.time_rows.assign(n * padded, 0.0);
      for (std::size_t src = 0; src < n; ++src)
        std::copy_n(comm.times().row(src).data(), n,
                    workspace.time_rows.data() + src * padded);
      rows = workspace.time_rows.data();
      stride = padded;
    }

    // Pending destinations per sender: every destination but self.
    workspace.active_words.assign(words, ~std::uint64_t{0});
    if (n % 64 != 0)
      workspace.active_words[words - 1] = (std::uint64_t{1} << (n % 64)) - 1;
    workspace.cand_bits.resize(n * words);
    for (std::size_t src = 0; src < n; ++src) {
      std::uint64_t* row = workspace.cand_bits.data() + src * words;
      for (std::size_t w = 0; w < words; ++w) row[w] = workspace.active_words[w];
      row[src >> 6] &= ~(std::uint64_t{1} << (src & 63));
    }
    workspace.mask_scratch.assign(2 * words, 0);
    std::uint64_t* claimed = workspace.mask_scratch.data();
    std::uint64_t* cand = claimed + words;

    while (total_remaining > 0) {
      std::vector<CommEvent> step;
      step.reserve(n);
      for (std::size_t w = 0; w < words; ++w) claimed[w] = 0;
      workspace.idled.clear();
      std::size_t last_picker = workspace.order.front();

      for (const std::size_t src : workspace.order) {
        if (workspace.remaining[src] == 0) continue;
        const std::uint64_t* pending =
            workspace.cand_bits.data() + src * words;
        std::size_t dst;
        if (words == 1) {
          const std::uint64_t mask = pending[0] & ~claimed[0];
          if (mask == 0) {
            workspace.idled.push_back(src);
            continue;
          }
          dst = pick_best64(rows + src * stride, mask);
        } else {
          std::uint64_t any = 0;
          for (std::size_t w = 0; w < words; ++w)
            any |= cand[w] = pending[w] & ~claimed[w];
          if (any == 0) {
            workspace.idled.push_back(src);
            continue;
          }
          dst = pick_best_wide(rows + src * stride, cand, words);
        }
        step.push_back({src, dst});
        workspace.cand_bits[src * words + (dst >> 6)] &=
            ~(std::uint64_t{1} << (dst & 63));
        claimed[dst >> 6] |= std::uint64_t{1} << (dst & 63);
        --workspace.remaining[src];
        --total_remaining;
        last_picker = src;
      }
      check(!step.empty(), "greedy_steps: no progress in a step");
      steps.push_back(std::move(step));
      advance_order(last_picker);
    }
    return StepSchedule{n, std::move(steps)};
  }
#endif  // HCS_SIMD_ARGMIN_X86

  const std::size_t words = (deg + 63) / 64;  // bitset words per sender

  // Per-sender destination lists, longest event first; ties break toward
  // the lower destination index. Sorting by (time desc, dst asc) from the
  // ascending fill reproduces the reference's stable_sort exactly, and
  // std::sort runs in place — no per-call merge buffer.
  workspace.ranked.resize(n * deg);
  for (std::size_t src = 0; src < n; ++src) {
    std::uint32_t* list = workspace.ranked.data() + src * deg;
    std::size_t k = 0;
    for (std::size_t dst = 0; dst < n; ++dst)
      if (dst != src) list[k++] = static_cast<std::uint32_t>(dst);
    std::sort(list, list + deg, [&](std::uint32_t a, std::uint32_t b) {
      const double ta = comm.time(src, a), tb = comm.time(src, b);
      return ta > tb || (ta == tb && a < b);
    });
  }

  // avail bit (src, pos) set = ranked[src][pos] not sent yet.
  const std::uint64_t full = ~std::uint64_t{0};
  const std::uint64_t last_word =
      (deg % 64 == 0) ? full : (std::uint64_t{1} << (deg % 64)) - 1;
  workspace.avail_bits.assign(n * words, full);
  for (std::size_t src = 0; src < n; ++src)
    workspace.avail_bits[src * words + words - 1] = last_word;

  while (total_remaining > 0) {
    std::vector<CommEvent> step;
    step.reserve(n);
    workspace.claimed.clear_all();  // destinations taken this step
    workspace.idled.clear();
    std::size_t last_picker = workspace.order.front();

    for (const std::size_t src : workspace.order) {
      if (workspace.remaining[src] == 0) continue;  // finished senders never idle
      std::uint64_t* avail = workspace.avail_bits.data() + src * words;
      const std::uint32_t* list = workspace.ranked.data() + src * deg;
      bool found = false;
      for (std::size_t w = 0; w < words && !found; ++w) {
        std::uint64_t bits = avail[w];
        while (bits != 0) {
          const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
          const std::size_t dst = list[w * 64 + b];
          if (!workspace.claimed.test(dst)) {
            step.push_back({src, dst});
            avail[w] &= ~(std::uint64_t{1} << b);
            workspace.claimed.set(dst);
            --workspace.remaining[src];
            --total_remaining;
            last_picker = src;
            found = true;
            break;
          }
          bits &= bits - 1;  // claimed this step; try the next-ranked dst
        }
      }
      if (!found) workspace.idled.push_back(src);
    }
    check(!step.empty(), "greedy_steps: no progress in a step");
    steps.push_back(std::move(step));
    advance_order(last_picker);
  }
  return StepSchedule{n, std::move(steps)};
}

StepSchedule greedy_steps(const CommMatrix& comm) {
  SchedulerWorkspace workspace;
  return greedy_steps(comm, workspace);
}

Schedule GreedyScheduler::schedule(const CommMatrix& comm) const {
  return execute_async(greedy_steps(comm, workspace_), comm, workspace_);
}

}  // namespace hcs
