#include "scenario/runner.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "fault/resilient.hpp"
#include "netmodel/directory.hpp"
#include "scenario/resolve.hpp"
#include "sim/send_program.hpp"
#include "sim/simulator.hpp"
#include "trace/auditor.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace hcs::scenario {
namespace {

/// Deadline compliance of what actually executed (as opposed to
/// evaluate_qos on the planned schedule): delivered messages are late
/// when they finish past their deadline; undelivered messages with a
/// finite deadline count as missed outright.
struct ExecutedQos {
  std::size_t missed = 0;
  double max_tardiness_s = 0.0;
  double weighted_tardiness_s = 0.0;

  void add(std::size_t src, std::size_t dst, double finish_s, bool delivered,
           const QosSpec& qos) {
    const double deadline = qos.deadline_s(src, dst);
    if (delivered && finish_s <= deadline) return;
    if (!delivered && deadline == std::numeric_limits<double>::infinity())
      return;
    const double tardiness = std::max(0.0, finish_s - deadline);
    ++missed;
    max_tardiness_s = std::max(max_tardiness_s, tardiness);
    weighted_tardiness_s += qos.priority(src, dst) * tardiness;
  }
};

/// Everything the artifact renders, gathered from whichever executor ran.
struct Execution {
  double executed_s = 0.0;
  std::size_t events_executed = 0;
  std::size_t direct = 0;
  std::size_t relayed = 0;
  std::size_t rescued = 0;
  std::size_t undeliverable = 0;
  std::size_t replans = 0;
  std::size_t reschedules = 0;
  std::size_t failed_attempts = 0;
  ExecutedQos qos;
};

Execution execute(const ResolvedScenario& resolved, const Schedule& planned,
                  EventTrace& trace) {
  const ScenarioSpec& spec = resolved.spec;
  Execution exec;
  if (spec.has_faults) {
    const StaticDirectory directory{resolved.network};
    const FaultPlan plan = make_fault_plan(spec, planned.completion_time());
    const ResilientResult result = run_resilient_traced(
        *resolved.scheduler, directory, resolved.messages, plan,
        make_resilient_options(spec, planned.completion_time()), trace);
    exec.executed_s = result.completion_time;
    exec.events_executed = result.events.size();
    exec.relayed = result.relayed_count;
    exec.rescued = result.rescued_count;
    exec.undeliverable = result.undelivered_count;
    exec.direct = result.outcomes.size() - result.relayed_count -
                  result.undelivered_count - result.rescued_count;
    exec.replans = result.replan_count;
    exec.reschedules = result.reschedule_count;
    exec.failed_attempts = result.failed_attempts;
    if (spec.has_qos)
      for (const MessageOutcome& outcome : result.outcomes)
        exec.qos.add(outcome.src, outcome.dst, outcome.finish_s,
                     outcome.status != DeliveryStatus::kUndeliverable,
                     resolved.qos);
    return exec;
  }

  const auto run = [&](const DirectoryService& directory) {
    const NetworkSimulator simulator{directory, resolved.messages};
    return simulator.run_traced(SendProgram::from_schedule(planned), {},
                                trace);
  };
  SimResult result;
  if (spec.drift_sigma > 0.0) {
    DriftingDirectory::Options drift;
    drift.step_sigma = spec.drift_sigma;
    drift.update_period_s = spec.drift_period_s;
    const DriftingDirectory directory{resolved.network, spec.seed * 97,
                                      drift};
    result = run(directory);
  } else {
    const StaticDirectory directory{resolved.network};
    result = run(directory);
  }
  exec.executed_s = result.completion_time;
  exec.events_executed = result.events.size();
  exec.direct = result.events.size();
  exec.undeliverable = result.undelivered.size();
  exec.failed_attempts = result.failed_attempts;
  if (spec.has_qos)
    for (const ScheduledEvent& event : result.events)
      exec.qos.add(event.src, event.dst, event.finish_s, /*delivered=*/true,
                   resolved.qos);
  return exec;
}

std::string render_artifact(const ResolvedScenario& resolved,
                            const Schedule& planned, const Execution& exec,
                            const AuditReport& audit,
                            const EventTrace& trace) {
  const ScenarioSpec& spec = resolved.spec;
  const double lb = resolved.lower_bound_s;
  const double ratio =
      lb > 0.0 ? planned.completion_time() / lb : 1.0;
  std::ostringstream out;
  out << "{\n";
  out << "  \"name\": \"" << spec.name << "\",\n";
  out << "  \"processors\": " << spec.processors << ",\n";
  out << "  \"seed\": " << spec.seed << ",\n";
  out << "  \"topology\": \"" << topology_family_name(spec.family)
      << "\",\n";
  out << "  \"workload\": \"" << workload_kind_name(spec.workload)
      << "\",\n";
  out << "  \"scheduler\": \"" << resolved.scheduler->name() << "\",\n";
  out << "  \"lower_bound_s\": " << format_double(lb, 6) << ",\n";
  out << "  \"planned_s\": " << format_double(planned.completion_time(), 6)
      << ",\n";
  out << "  \"planned_ratio\": " << format_double(ratio, 6) << ",\n";
  out << "  \"executed_s\": " << format_double(exec.executed_s, 6) << ",\n";
  out << "  \"audit\": \""
      << (audit.ok() ? "clean"
                     : "violations: " + std::to_string(
                                            audit.violations.size()))
      << "\",\n";
  out << "  \"audit_transfers\": " << audit.transfers << ",\n";
  out << "  \"events_executed\": " << exec.events_executed << ",\n";
  out << "  \"outcomes\": {\"direct\": " << exec.direct
      << ", \"relayed\": " << exec.relayed
      << ", \"rescued\": " << exec.rescued
      << ", \"undeliverable\": " << exec.undeliverable << "},\n";
  out << "  \"replans\": " << exec.replans << ",\n";
  out << "  \"reschedules\": " << exec.reschedules << ",\n";
  out << "  \"failed_attempts\": " << exec.failed_attempts << ",\n";
  if (spec.has_qos) {
    const QosMetrics planned_qos = evaluate_qos(planned, resolved.qos);
    out << "  \"qos\": {\"planned_missed\": " << planned_qos.missed_deadlines
        << ", \"planned_max_tardiness_s\": "
        << format_double(planned_qos.max_tardiness_s, 6)
        << ", \"executed_missed\": " << exec.qos.missed
        << ", \"executed_max_tardiness_s\": "
        << format_double(exec.qos.max_tardiness_s, 6)
        << ", \"executed_weighted_tardiness_s\": "
        << format_double(exec.qos.weighted_tardiness_s, 6) << "},\n";
  }
  out << "  \"trace\": {\"recorded\": " << trace.recorded()
      << ", \"dropped\": " << trace.dropped() << "}\n";
  out << "}\n";
  return out.str();
}

void check_expectations(const ScenarioSpec& spec, const Execution& exec,
                        const AuditReport& audit, const EventTrace& trace,
                        double planned_s, double lb,
                        std::vector<std::string>& failures) {
  if (!audit.ok())
    failures.push_back("audit: " + std::to_string(audit.violations.size()) +
                       " violation(s), first: " + audit.violations.front());
  if (trace.dropped() > 0)
    failures.push_back("trace ring dropped " +
                       std::to_string(trace.dropped()) +
                       " event(s); the audit window is incomplete");
  if (spec.expect_complete && exec.undeliverable > 0)
    failures.push_back("expected completion but " +
                       std::to_string(exec.undeliverable) +
                       " message(s) were undeliverable");
  if (spec.expect_max_ratio > 0.0 && lb > 0.0 &&
      planned_s > spec.expect_max_ratio * lb)
    failures.push_back("planned ratio " + format_double(planned_s / lb, 4) +
                       " exceeds max_ratio_to_lb " +
                       format_double(spec.expect_max_ratio, 4));
  if (spec.expect_deadlines_met && exec.qos.missed > 0)
    failures.push_back("expected all deadlines met but " +
                       std::to_string(exec.qos.missed) +
                       " executed message(s) missed theirs");
}

/// 1-based line of the first difference between two artifact texts.
std::size_t first_diff_line(std::string_view a, std::string_view b) {
  std::size_t line = 1;
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t k = 0; k < common; ++k) {
    if (a[k] != b[k]) return line;
    if (a[k] == '\n') ++line;
  }
  return line;
}

std::string golden_file_name(const ScenarioSpec& spec) {
  return spec.golden.empty() ? spec.name + ".json" : spec.golden;
}

}  // namespace

ScenarioRun run_scenario(const ScenarioSpec& spec) {
  ScenarioRun run;
  const ResolvedScenario resolved = resolve_scenario(spec);
  const Schedule planned = resolved.scheduler->schedule(resolved.comm);
  planned.validate(resolved.comm);

  // ~4 trace events per ordered pair (and more under retries/relays);
  // size the ring so the audit sees the full history, not a window.
  const std::size_t n = spec.processors;
  EventTrace trace{std::max<std::size_t>(std::size_t{1} << 16, 4 * n * n)};
  const Execution exec = execute(resolved, planned, trace);

  AuditOptions audit_options;  // serialized receives: every executor here
  const ScheduleAuditor auditor{audit_options};
  // A faulty run's completion time includes give-up instants, which are
  // not port engagements; skip the completion cross-check there.
  const AuditReport audit = spec.has_faults
                                ? auditor.audit(trace)
                                : auditor.audit(trace, exec.executed_s);

  run.artifact = render_artifact(resolved, planned, exec, audit, trace);
  check_expectations(spec, exec, audit, trace, planned.completion_time(),
                     resolved.lower_bound_s, run.failures);
  run.lower_bound_s = resolved.lower_bound_s;
  run.planned_s = planned.completion_time();
  run.executed_s = exec.executed_s;
  run.undeliverable = exec.undeliverable;
  run.executed_missed_deadlines = exec.qos.missed;
  return run;
}

std::string_view fleet_status_name(FleetStatus status) {
  switch (status) {
    case FleetStatus::kOk: return "ok";
    case FleetStatus::kUpdated: return "updated";
    case FleetStatus::kParseError: return "parse-error";
    case FleetStatus::kFailed: return "failed";
    case FleetStatus::kGoldenMissing: return "golden-missing";
    case FleetStatus::kGoldenDiff: return "golden-diff";
  }
  return "ok";
}

bool FleetResult::ok() const {
  return std::all_of(entries.begin(), entries.end(), [](const FleetEntry& e) {
    return e.status == FleetStatus::kOk || e.status == FleetStatus::kUpdated;
  });
}

FleetResult run_scenario_directory(const std::string& directory,
                                   const FleetOptions& options) {
  namespace fs = std::filesystem;
  const fs::path dir{directory};
  std::error_code ec;
  if (!fs::is_directory(dir, ec))
    throw InputError("'" + directory + "' is not a directory");

  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".scn") continue;
    const std::string name = entry.path().filename().string();
    if (!options.filter.empty() &&
        name.find(options.filter) == std::string::npos)
      continue;
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.empty())
    throw InputError("no .scn scenario files in '" + directory + "'" +
                     (options.filter.empty()
                          ? ""
                          : " matching '" + options.filter + "'"));

  // Read serially, compute on the pool into per-index slots, then handle
  // goldens serially in file order: byte-identical at any thread count.
  std::vector<std::string> contents(files.size());
  for (std::size_t k = 0; k < files.size(); ++k) {
    std::ifstream in{files[k]};
    if (!in)
      throw InputError("cannot read '" + files[k].string() + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    contents[k] = buffer.str();
  }

  FleetResult result;
  result.entries.resize(files.size());
  std::vector<std::string> golden_names(files.size());

  ThreadPool pool{ThreadPool::resolve_size(options.threads, files.size())};
  pool.run(files.size(), [&](std::size_t /*worker*/, std::size_t index) {
    FleetEntry& entry = result.entries[index];
    entry.file = files[index].filename().string();
    try {
      const ScenarioSpec spec = parse_scenario(contents[index]);
      entry.scenario = spec.name;
      golden_names[index] = golden_file_name(spec);
      const ScenarioRun run = run_scenario(spec);
      entry.artifact = run.artifact;
      if (!run.ok()) {
        entry.status = FleetStatus::kFailed;
        entry.detail = run.failures.front();
        for (std::size_t k = 1; k < run.failures.size(); ++k)
          entry.detail += "; " + run.failures[k];
      }
    } catch (const InputError& error) {
      entry.status = FleetStatus::kParseError;
      entry.detail = error.what();
    }
  });

  const fs::path golden_dir = dir / "golden";
  std::vector<std::string> seen_goldens;
  for (std::size_t k = 0; k < result.entries.size(); ++k) {
    FleetEntry& entry = result.entries[k];
    if (entry.status != FleetStatus::kOk) continue;
    const std::string& name = golden_names[k];
    if (std::find(seen_goldens.begin(), seen_goldens.end(), name) !=
        seen_goldens.end()) {
      entry.status = FleetStatus::kFailed;
      entry.detail = "golden artifact name '" + name +
                     "' is already used by an earlier scenario";
      continue;
    }
    seen_goldens.push_back(name);
    const fs::path golden_path = golden_dir / name;
    if (options.update_golden) {
      fs::create_directories(golden_dir);
      std::ofstream out{golden_path, std::ios::trunc};
      if (!out)
        throw InputError("cannot write '" + golden_path.string() + "'");
      out << entry.artifact;
      entry.status = FleetStatus::kUpdated;
      entry.detail = "wrote golden/" + name;
      continue;
    }
    std::ifstream in{golden_path};
    if (!in) {
      entry.status = FleetStatus::kGoldenMissing;
      entry.detail = "no golden/" + name + " (run with --update-golden)";
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (buffer.str() != entry.artifact) {
      entry.status = FleetStatus::kGoldenDiff;
      entry.detail =
          "artifact differs from golden/" + name + " (first difference at "
          "line " +
          std::to_string(first_diff_line(entry.artifact, buffer.str())) +
          ")";
    }
  }
  return result;
}

}  // namespace hcs::scenario
