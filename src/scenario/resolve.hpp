// Scenario resolution: ScenarioSpec -> runnable problem instance.
//
// Resolution composes the existing builders — workload/scenario.hpp's
// figure instances, netmodel's flat/clustered/GUSTO fabrics, src/qos
// deadline specs, core's flat/hierarchical/QoS schedulers — into one
// ResolvedScenario. Everything is a pure function of the spec: the same
// file resolves to bit-identical instances on every run, which is what
// lets the fleet runner (scenario/runner.hpp) diff artifacts against
// checked-in goldens.
//
// Seeding follows make_instance's convention (one Rng{seed} drawing a
// network sub-seed then a workload sub-seed), so a .scn file with a paper
// workload on a flat or clustered fabric generates exactly the instance
// the figure sweeps generate for the same (P, seed).
#pragma once

#include <memory>

#include "core/comm_matrix.hpp"
#include "core/scheduler.hpp"
#include "fault/resilient.hpp"
#include "netmodel/network_model.hpp"
#include "qos/qos_types.hpp"
#include "scenario/spec.hpp"
#include "workload/generators.hpp"

namespace hcs::scenario {

/// A spec resolved into concrete inputs: the network snapshot, the
/// message matrix, their communication matrix (with the paper's t_lb),
/// the QoS annotations (unconstrained unless the spec has a [qos]
/// section), and the configured scheduler.
struct ResolvedScenario {
  ScenarioSpec spec;
  NetworkModel network;
  MessageMatrix messages;
  CommMatrix comm;
  double lower_bound_s = 0.0;
  QosSpec qos;
  std::unique_ptr<Scheduler> scheduler;
};

/// Resolves `spec`. Deterministic; throws InputError only on internal
/// inconsistencies (parse_scenario already validated the spec).
[[nodiscard]] ResolvedScenario resolve_scenario(const ScenarioSpec& spec);

/// Synthesizes the spec's [faults] section into a FaultPlan, scaled to
/// the run's planned makespan, following the CLI fault-sweep conventions:
/// crash-stops staggered on the highest-numbered nodes at
/// 0.25 * horizon * (k+1), crash-restart windows on the lowest-numbered
/// nodes, permanent seeded cut pairs, and seeded flapping/brownout pairs.
/// Empty when the spec has no [faults] section.
[[nodiscard]] FaultPlan make_fault_plan(const ScenarioSpec& spec,
                                        double horizon_s);

/// Resilient-executor options for the spec: the default policy, plus the
/// CLI's budgeted replan policy when the spec asks for replan (backoff
/// concedes enough wall-clock for mid-horizon recovery windows to pass).
[[nodiscard]] ResilientOptions make_resilient_options(const ScenarioSpec& spec,
                                                      double horizon_s);

}  // namespace hcs::scenario
