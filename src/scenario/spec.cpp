#include "scenario/spec.hpp"

#include <array>
#include <charconv>
#include <map>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

namespace hcs::scenario {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

struct Entry {
  std::string value;
  std::size_t line = 0;
};

/// One parsed file: every accepted `key = value`, plus where each section
/// header and key appeared, for line-numbered semantic diagnostics.
struct RawScenario {
  std::map<std::string, Entry, std::less<>> values;  // "section.key"
  std::map<std::string, std::size_t, std::less<>> sections;
};

constexpr std::array<std::string_view, 7> kSections = {
    "scenario", "topology", "workload", "scheduler",
    "qos",      "faults",   "expect"};

bool known_section(std::string_view name) {
  for (std::string_view s : kSections) {
    if (s == name) return true;
  }
  return false;
}

bool known_key(std::string_view section, std::string_view key) {
  static const std::map<std::string_view, std::vector<std::string_view>>
      kKeys = {
          {"scenario", {"name", "seed"}},
          {"topology",
           {"family", "processors", "sites", "drift_sigma",
            "drift_period_s"}},
          {"workload", {"kind", "bytes", "rows", "cols", "element_bytes"}},
          {"scheduler", {"algorithm", "ordering", "hierarchical"}},
          {"qos",
           {"deadline_factor", "tight_pairs", "tight_factor",
            "tight_priority"}},
          {"faults",
           {"crashes", "cuts", "loss", "restarts", "flaps", "brownouts",
            "brownout_factor", "replan"}},
          {"expect",
           {"complete", "max_ratio_to_lb", "deadlines_met", "golden"}},
      };
  auto it = kKeys.find(section);
  if (it == kKeys.end()) return false;
  for (std::string_view k : it->second) {
    if (k == key) return true;
  }
  return false;
}

RawScenario split_lines(std::string_view text) {
  RawScenario raw;
  std::string section;
  std::size_t line_no = 0;
  while (!text.empty() || line_no == 0) {
    std::string_view line = text;
    auto nl = text.find('\n');
    if (nl == std::string_view::npos) {
      text = {};
    } else {
      line = text.substr(0, nl);
      text.remove_prefix(nl + 1);
    }
    ++line_no;
    if (auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw ScenarioError(line_no, "malformed section header '" +
                                         std::string(line) +
                                         "' (expected [name])");
      }
      std::string name(trim(line.substr(1, line.size() - 2)));
      if (!known_section(name)) {
        throw ScenarioError(line_no, "unknown section [" + name + "]");
      }
      if (auto [it, inserted] = raw.sections.emplace(name, line_no);
          !inserted) {
        throw ScenarioError(line_no, "duplicate section [" + name +
                                         "] (first at line " +
                                         std::to_string(it->second) + ")");
      }
      section = std::move(name);
      continue;
    }
    auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw ScenarioError(line_no, "expected 'key = value', got '" +
                                       std::string(line) + "'");
    }
    std::string key(trim(line.substr(0, eq)));
    std::string value(trim(line.substr(eq + 1)));
    if (section.empty()) {
      throw ScenarioError(line_no,
                          "key '" + key + "' outside any [section]");
    }
    if (key.empty()) {
      throw ScenarioError(line_no, "empty key before '='");
    }
    if (value.empty()) {
      throw ScenarioError(line_no, "empty value for key '" + key + "'");
    }
    if (!known_key(section, key)) {
      throw ScenarioError(line_no, "unknown key '" + key +
                                       "' in section [" + section + "]");
    }
    std::string full = section + "." + key;
    if (auto [it, inserted] =
            raw.values.emplace(std::move(full), Entry{value, line_no});
        !inserted) {
      throw ScenarioError(line_no, "duplicate key '" + key +
                                       "' in section [" + section +
                                       "] (first at line " +
                                       std::to_string(it->second.line) +
                                       ")");
    }
  }
  return raw;
}

[[noreturn]] void bad_value(const Entry& e, const std::string& what) {
  throw ScenarioError(e.line, what + ": '" + e.value + "'");
}

std::uint64_t parse_u64(const Entry& e) {
  std::uint64_t out = 0;
  const char* first = e.value.data();
  const char* last = first + e.value.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec != std::errc{} || ptr != last) {
    bad_value(e, "expected a non-negative integer");
  }
  return out;
}

std::size_t parse_size(const Entry& e) {
  return static_cast<std::size_t>(parse_u64(e));
}

double parse_f64(const Entry& e) {
  double out = 0.0;
  const char* first = e.value.data();
  const char* last = first + e.value.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  if (ec != std::errc{} || ptr != last) {
    bad_value(e, "expected a number");
  }
  return out;
}

bool parse_bool(const Entry& e) {
  if (e.value == "true") return true;
  if (e.value == "false") return false;
  bad_value(e, "expected true or false");
}

TopologyFamily parse_family(const Entry& e) {
  if (e.value == "flat") return TopologyFamily::kFlat;
  if (e.value == "clustered") return TopologyFamily::kClustered;
  if (e.value == "gusto") return TopologyFamily::kGusto;
  bad_value(e, "unknown topology family (flat|clustered|gusto)");
}

WorkloadKind parse_kind(const Entry& e) {
  if (e.value == "small") return WorkloadKind::kSmall;
  if (e.value == "large") return WorkloadKind::kLarge;
  if (e.value == "mixed") return WorkloadKind::kMixed;
  if (e.value == "servers") return WorkloadKind::kServers;
  if (e.value == "uniform") return WorkloadKind::kUniform;
  if (e.value == "transpose") return WorkloadKind::kTranspose;
  bad_value(e,
            "unknown workload kind "
            "(small|large|mixed|servers|uniform|transpose)");
}

QosOrdering parse_ordering(const Entry& e) {
  if (e.value == "edf") return QosOrdering::kEdf;
  if (e.value == "priority") return QosOrdering::kPriorityFirst;
  if (e.value == "laxity") return QosOrdering::kLeastLaxity;
  bad_value(e, "unknown qos ordering (edf|priority|laxity)");
}

constexpr std::array<SchedulerKind, 7> kAllKinds = {
    SchedulerKind::kBaseline, SchedulerKind::kBaselineBarrier,
    SchedulerKind::kMaxMatching, SchedulerKind::kMinMatching,
    SchedulerKind::kGreedy, SchedulerKind::kOpenShop,
    SchedulerKind::kRandom};

bool valid_name(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Semantic validation helper: where to anchor a diagnostic about a key
/// that may or may not have been written.
class Lines {
 public:
  explicit Lines(const RawScenario& raw) : raw_(raw) {}

  [[nodiscard]] bool has(std::string_view full) const {
    return raw_.values.find(full) != raw_.values.end();
  }
  [[nodiscard]] std::size_t of(std::string_view full) const {
    if (auto it = raw_.values.find(full); it != raw_.values.end()) {
      return it->second.line;
    }
    auto dot = full.find('.');
    if (auto it = raw_.sections.find(full.substr(0, dot));
        it != raw_.sections.end()) {
      return it->second;
    }
    return 1;
  }
  [[nodiscard]] std::size_t section(std::string_view name) const {
    if (auto it = raw_.sections.find(name); it != raw_.sections.end()) {
      return it->second;
    }
    return 1;
  }

 private:
  const RawScenario& raw_;
};

void validate(const ScenarioSpec& spec, const RawScenario& raw) {
  const Lines at{raw};

  if (!at.has("scenario.name")) {
    throw ScenarioError(at.section("scenario"),
                        "[scenario] requires 'name'");
  }
  if (!valid_name(spec.name)) {
    throw ScenarioError(at.of("scenario.name"),
                        "scenario name must match [A-Za-z0-9_-]+, got '" +
                            spec.name + "'");
  }

  // Topology.
  if (spec.family == TopologyFamily::kGusto) {
    if (at.has("topology.processors") && spec.processors != 5) {
      throw ScenarioError(
          at.of("topology.processors"),
          "the gusto topology is fixed at 5 processors, got " +
              std::to_string(spec.processors));
    }
  } else if (!at.has("topology.processors")) {
    throw ScenarioError(at.section("topology"),
                        "[topology] requires 'processors'");
  }
  if (spec.processors < 2) {
    throw ScenarioError(at.of("topology.processors"),
                        "processors must be >= 2, got " +
                            std::to_string(spec.processors));
  }
  if (at.has("topology.sites") &&
      spec.family != TopologyFamily::kClustered) {
    throw ScenarioError(at.of("topology.sites"),
                        "'sites' is only valid with family = clustered");
  }
  if (spec.family == TopologyFamily::kClustered &&
      (spec.sites < 2 || spec.sites > spec.processors)) {
    throw ScenarioError(at.of("topology.sites"),
                        "sites must be in [2, processors], got " +
                            std::to_string(spec.sites));
  }
  if (spec.drift_sigma < 0.0) {
    throw ScenarioError(at.of("topology.drift_sigma"),
                        "drift_sigma must be >= 0");
  }
  if (at.has("topology.drift_period_s")) {
    if (spec.drift_sigma <= 0.0) {
      throw ScenarioError(
          at.of("topology.drift_period_s"),
          "'drift_period_s' requires drift_sigma > 0");
    }
    if (spec.drift_period_s <= 0.0) {
      throw ScenarioError(at.of("topology.drift_period_s"),
                          "drift_period_s must be > 0");
    }
  }

  // Workload.
  if (!at.has("workload.kind")) {
    throw ScenarioError(at.section("workload"),
                        "[workload] requires 'kind'");
  }
  if (at.has("workload.bytes") && spec.workload != WorkloadKind::kUniform) {
    throw ScenarioError(at.of("workload.bytes"),
                        "'bytes' is only valid with kind = uniform");
  }
  for (std::string_view key : {"rows", "cols", "element_bytes"}) {
    std::string full = "workload." + std::string(key);
    if (at.has(full) && spec.workload != WorkloadKind::kTranspose) {
      throw ScenarioError(at.of(full), "'" + std::string(key) +
                                           "' is only valid with kind = "
                                           "transpose");
    }
  }
  if (spec.uniform_bytes == 0) {
    throw ScenarioError(at.of("workload.bytes"), "bytes must be > 0");
  }
  if (spec.transpose_rows == 0 || spec.transpose_cols == 0 ||
      spec.element_bytes == 0) {
    throw ScenarioError(at.section("workload"),
                        "transpose rows, cols, and element_bytes must all "
                        "be > 0");
  }

  // Scheduler.
  if (at.has("scheduler.ordering") && !spec.qos_scheduler) {
    throw ScenarioError(at.of("scheduler.ordering"),
                        "'ordering' requires algorithm = qos");
  }
  if (spec.qos_scheduler && !spec.has_qos) {
    throw ScenarioError(at.of("scheduler.algorithm"),
                        "algorithm = qos requires a [qos] section");
  }
  if (spec.qos_scheduler && spec.hierarchical) {
    throw ScenarioError(
        at.of("scheduler.hierarchical"),
        "algorithm = qos cannot be combined with hierarchical = true");
  }
  if (spec.hierarchical && spec.processors < 4) {
    throw ScenarioError(at.of("scheduler.hierarchical"),
                        "hierarchical scheduling requires processors >= 4");
  }

  // QoS.
  if (spec.has_qos) {
    if (spec.deadline_factor <= 0.0) {
      throw ScenarioError(at.of("qos.deadline_factor"),
                          "deadline_factor must be > 0");
    }
    const std::size_t pair_limit =
        spec.processors * (spec.processors - 1);
    if (spec.tight_pairs > pair_limit) {
      throw ScenarioError(at.of("qos.tight_pairs"),
                          "tight_pairs must be <= P*(P-1) = " +
                              std::to_string(pair_limit));
    }
    for (std::string_view key : {"tight_factor", "tight_priority"}) {
      std::string full = "qos." + std::string(key);
      if (at.has(full) && spec.tight_pairs == 0) {
        throw ScenarioError(at.of(full), "'" + std::string(key) +
                                             "' requires tight_pairs > 0");
      }
    }
    if (spec.tight_factor <= 0.0) {
      throw ScenarioError(at.of("qos.tight_factor"),
                          "tight_factor must be > 0");
    }
    if (spec.tight_priority <= 0.0) {
      throw ScenarioError(at.of("qos.tight_priority"),
                          "tight_priority must be > 0");
    }
  }

  // Faults.
  if (spec.has_faults) {
    if (spec.processors < 3) {
      throw ScenarioError(at.section("faults"),
                          "fault plans require processors >= 3 (relays "
                          "need an intermediate node)");
    }
    if (spec.crashes + spec.restarts > spec.processors - 2) {
      throw ScenarioError(
          at.section("faults"),
          "crashes + restarts must leave at least 2 healthy nodes "
          "(limit " +
              std::to_string(spec.processors - 2) + ")");
    }
    if (spec.loss < 0.0 || spec.loss >= 1.0) {
      throw ScenarioError(at.of("faults.loss"),
                          "loss must be in [0, 1)");
    }
    if (at.has("faults.brownout_factor") && spec.brownouts == 0) {
      throw ScenarioError(at.of("faults.brownout_factor"),
                          "'brownout_factor' requires brownouts > 0");
    }
    if (spec.brownout_factor <= 0.0 || spec.brownout_factor > 1.0) {
      throw ScenarioError(at.of("faults.brownout_factor"),
                          "brownout_factor must be in (0, 1]");
    }
    if (spec.drift_sigma > 0.0) {
      throw ScenarioError(at.section("faults"),
                          "[faults] cannot be combined with directory "
                          "drift (drift_sigma > 0)");
    }
    if (spec.crashes > 0 && spec.expect_complete) {
      throw ScenarioError(at.section("faults"),
                          "crash-stop nodes make completion impossible; "
                          "set [expect] complete = false");
    }
  }

  // Expectations.
  if (at.has("expect.max_ratio_to_lb") && spec.expect_max_ratio <= 0.0) {
    throw ScenarioError(at.of("expect.max_ratio_to_lb"),
                        "max_ratio_to_lb must be > 0");
  }
  if (spec.expect_deadlines_met && !spec.has_qos) {
    throw ScenarioError(at.of("expect.deadlines_met"),
                        "'deadlines_met' requires a [qos] section");
  }
  if (at.has("expect.golden") &&
      spec.golden.find('/') != std::string::npos) {
    throw ScenarioError(at.of("expect.golden"),
                        "golden must be a bare file name, got '" +
                            spec.golden + "'");
  }
}

std::string fmt(double v) {
  std::array<char, 64> buf{};
  auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  (void)ec;
  return std::string(buf.data(), ptr);
}

}  // namespace

ScenarioSpec parse_scenario(std::string_view text) {
  RawScenario raw = split_lines(text);
  ScenarioSpec spec;
  spec.has_qos = raw.sections.contains("qos");
  spec.has_faults = raw.sections.contains("faults");
  for (const auto& [full, entry] : raw.values) {
    if (full == "scenario.name") {
      spec.name = entry.value;
    } else if (full == "scenario.seed") {
      spec.seed = parse_u64(entry);
    } else if (full == "topology.family") {
      spec.family = parse_family(entry);
    } else if (full == "topology.processors") {
      spec.processors = parse_size(entry);
    } else if (full == "topology.sites") {
      spec.sites = parse_size(entry);
    } else if (full == "topology.drift_sigma") {
      spec.drift_sigma = parse_f64(entry);
    } else if (full == "topology.drift_period_s") {
      spec.drift_period_s = parse_f64(entry);
    } else if (full == "workload.kind") {
      spec.workload = parse_kind(entry);
    } else if (full == "workload.bytes") {
      spec.uniform_bytes = parse_u64(entry);
    } else if (full == "workload.rows") {
      spec.transpose_rows = parse_size(entry);
    } else if (full == "workload.cols") {
      spec.transpose_cols = parse_size(entry);
    } else if (full == "workload.element_bytes") {
      spec.element_bytes = parse_u64(entry);
    } else if (full == "scheduler.algorithm") {
      if (entry.value == "qos") {
        spec.qos_scheduler = true;
      } else {
        bool found = false;
        for (SchedulerKind kind : kAllKinds) {
          if (entry.value == scheduler_name(kind)) {
            spec.algorithm = kind;
            found = true;
            break;
          }
        }
        if (!found) {
          bad_value(entry, "unknown scheduler algorithm");
        }
      }
    } else if (full == "scheduler.ordering") {
      spec.ordering = parse_ordering(entry);
    } else if (full == "scheduler.hierarchical") {
      spec.hierarchical = parse_bool(entry);
    } else if (full == "qos.deadline_factor") {
      spec.deadline_factor = parse_f64(entry);
    } else if (full == "qos.tight_pairs") {
      spec.tight_pairs = parse_size(entry);
    } else if (full == "qos.tight_factor") {
      spec.tight_factor = parse_f64(entry);
    } else if (full == "qos.tight_priority") {
      spec.tight_priority = parse_f64(entry);
    } else if (full == "faults.crashes") {
      spec.crashes = parse_size(entry);
    } else if (full == "faults.cuts") {
      spec.cuts = parse_size(entry);
    } else if (full == "faults.loss") {
      spec.loss = parse_f64(entry);
    } else if (full == "faults.restarts") {
      spec.restarts = parse_size(entry);
    } else if (full == "faults.flaps") {
      spec.flaps = parse_size(entry);
    } else if (full == "faults.brownouts") {
      spec.brownouts = parse_size(entry);
    } else if (full == "faults.brownout_factor") {
      spec.brownout_factor = parse_f64(entry);
    } else if (full == "faults.replan") {
      spec.replan = parse_bool(entry);
    } else if (full == "expect.complete") {
      spec.expect_complete = parse_bool(entry);
    } else if (full == "expect.max_ratio_to_lb") {
      spec.expect_max_ratio = parse_f64(entry);
    } else if (full == "expect.deadlines_met") {
      spec.expect_deadlines_met = parse_bool(entry);
    } else if (full == "expect.golden") {
      spec.golden = entry.value;
    }
  }
  if (spec.family == TopologyFamily::kGusto &&
      !raw.values.contains("topology.processors")) {
    spec.processors = 5;
  }
  validate(spec, raw);
  return spec;
}

std::string emit_scenario(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "[scenario]\n";
  out << "name = " << spec.name << "\n";
  out << "seed = " << spec.seed << "\n";

  out << "\n[topology]\n";
  out << "family = " << topology_family_name(spec.family) << "\n";
  out << "processors = " << spec.processors << "\n";
  if (spec.family == TopologyFamily::kClustered) {
    out << "sites = " << spec.sites << "\n";
  }
  if (spec.drift_sigma > 0.0) {
    out << "drift_sigma = " << fmt(spec.drift_sigma) << "\n";
    out << "drift_period_s = " << fmt(spec.drift_period_s) << "\n";
  }

  out << "\n[workload]\n";
  out << "kind = " << workload_kind_name(spec.workload) << "\n";
  if (spec.workload == WorkloadKind::kUniform) {
    out << "bytes = " << spec.uniform_bytes << "\n";
  }
  if (spec.workload == WorkloadKind::kTranspose) {
    out << "rows = " << spec.transpose_rows << "\n";
    out << "cols = " << spec.transpose_cols << "\n";
    out << "element_bytes = " << spec.element_bytes << "\n";
  }

  out << "\n[scheduler]\n";
  if (spec.qos_scheduler) {
    out << "algorithm = qos\n";
    out << "ordering = " << qos_ordering_name(spec.ordering) << "\n";
  } else {
    out << "algorithm = " << scheduler_name(spec.algorithm) << "\n";
  }
  if (spec.hierarchical) {
    out << "hierarchical = true\n";
  }

  if (spec.has_qos) {
    out << "\n[qos]\n";
    out << "deadline_factor = " << fmt(spec.deadline_factor) << "\n";
    out << "tight_pairs = " << spec.tight_pairs << "\n";
    if (spec.tight_pairs > 0) {
      out << "tight_factor = " << fmt(spec.tight_factor) << "\n";
      out << "tight_priority = " << fmt(spec.tight_priority) << "\n";
    }
  }

  if (spec.has_faults) {
    out << "\n[faults]\n";
    if (spec.crashes > 0) out << "crashes = " << spec.crashes << "\n";
    if (spec.cuts > 0) out << "cuts = " << spec.cuts << "\n";
    if (spec.loss > 0.0) out << "loss = " << fmt(spec.loss) << "\n";
    if (spec.restarts > 0) out << "restarts = " << spec.restarts << "\n";
    if (spec.flaps > 0) out << "flaps = " << spec.flaps << "\n";
    if (spec.brownouts > 0) {
      out << "brownouts = " << spec.brownouts << "\n";
      out << "brownout_factor = " << fmt(spec.brownout_factor) << "\n";
    }
    if (spec.replan) out << "replan = true\n";
  }

  const bool expect_nondefault =
      !spec.expect_complete || spec.expect_max_ratio > 0.0 ||
      spec.expect_deadlines_met || !spec.golden.empty();
  if (expect_nondefault) {
    out << "\n[expect]\n";
    if (!spec.expect_complete) out << "complete = false\n";
    if (spec.expect_max_ratio > 0.0) {
      out << "max_ratio_to_lb = " << fmt(spec.expect_max_ratio) << "\n";
    }
    if (spec.expect_deadlines_met) out << "deadlines_met = true\n";
    if (!spec.golden.empty()) out << "golden = " << spec.golden << "\n";
  }
  return out.str();
}

std::string_view topology_family_name(TopologyFamily family) {
  switch (family) {
    case TopologyFamily::kFlat: return "flat";
    case TopologyFamily::kClustered: return "clustered";
    case TopologyFamily::kGusto: return "gusto";
  }
  return "flat";
}

std::string_view workload_kind_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kSmall: return "small";
    case WorkloadKind::kLarge: return "large";
    case WorkloadKind::kMixed: return "mixed";
    case WorkloadKind::kServers: return "servers";
    case WorkloadKind::kUniform: return "uniform";
    case WorkloadKind::kTranspose: return "transpose";
  }
  return "mixed";
}

std::string_view qos_ordering_name(QosOrdering ordering) {
  switch (ordering) {
    case QosOrdering::kEdf: return "edf";
    case QosOrdering::kPriorityFirst: return "priority";
    case QosOrdering::kLeastLaxity: return "laxity";
  }
  return "edf";
}

}  // namespace hcs::scenario
