#include "scenario/resolve.hpp"

#include <algorithm>
#include <utility>

#include "core/hierarchical_scheduler.hpp"
#include "netmodel/cluster_detect.hpp"
#include "netmodel/generator.hpp"
#include "netmodel/gusto.hpp"
#include "netmodel/link_params.hpp"
#include "qos/qos_scheduler.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace hcs::scenario {
namespace {

NetworkModel make_network(const ScenarioSpec& spec,
                          std::uint64_t network_seed) {
  switch (spec.family) {
    case TopologyFamily::kGusto:
      return gusto::network();
    case TopologyFamily::kClustered: {
      ClusteredNetworkOptions options;
      options.cluster_count = spec.sites;
      return generate_clustered_network(spec.processors, network_seed,
                                        options);
    }
    case TopologyFamily::kFlat:
      break;
  }
  return generate_network(spec.processors, network_seed);
}

MessageMatrix make_messages(const ScenarioSpec& spec,
                            std::uint64_t workload_seed) {
  const std::size_t n = spec.processors;
  switch (spec.workload) {
    case WorkloadKind::kSmall: return uniform_messages(n, kKiB);
    case WorkloadKind::kLarge: return uniform_messages(n, kMiB);
    case WorkloadKind::kMixed:
      return mixed_messages(n, workload_seed, {kKiB, kMiB});
    case WorkloadKind::kServers:
      return server_client_messages(n, workload_seed);
    case WorkloadKind::kUniform:
      return uniform_messages(n, spec.uniform_bytes);
    case WorkloadKind::kTranspose:
      return transpose_messages(n, spec.transpose_rows, spec.transpose_cols,
                                spec.element_bytes);
  }
  return uniform_messages(n, kKiB);
}

QosSpec make_qos(const ScenarioSpec& spec, double lower_bound_s) {
  QosSpec qos = QosSpec::unconstrained(spec.processors);
  if (!spec.has_qos) return qos;
  const std::size_t n = spec.processors;
  for (std::size_t src = 0; src < n; ++src)
    for (std::size_t dst = 0; dst < n; ++dst)
      if (src != dst)
        qos.deadline_s(src, dst) = spec.deadline_factor * lower_bound_s;
  // Tight pairs get a shorter deadline and a higher priority; draws are
  // decorrelated from the instance seeds by a fixed salt.
  Rng rng{spec.seed ^ 0x71D3ADE5ULL};
  std::vector<char> tight(n * n, 0);
  std::size_t placed = 0;
  while (placed < spec.tight_pairs) {
    const auto src = static_cast<std::size_t>(rng.next_below(n));
    const auto dst = static_cast<std::size_t>(rng.next_below(n));
    if (src == dst || tight[src * n + dst] != 0) continue;
    tight[src * n + dst] = 1;
    qos.deadline_s(src, dst) = spec.tight_factor * lower_bound_s;
    qos.priority(src, dst) = spec.tight_priority;
    ++placed;
  }
  return qos;
}

std::unique_ptr<Scheduler> make_spec_scheduler(const ScenarioSpec& spec,
                                               const NetworkModel& network,
                                               const QosSpec& qos) {
  if (spec.qos_scheduler) {
    return std::make_unique<QosScheduler>(qos, spec.ordering);
  }
  if (spec.hierarchical) {
    HierarchicalScheduler::Options options;
    options.inner = spec.algorithm;
    options.seed = spec.seed;
    return std::make_unique<HierarchicalScheduler>(detect_clusters(network),
                                                   options);
  }
  return make_scheduler(spec.algorithm, spec.seed);
}

}  // namespace

ResolvedScenario resolve_scenario(const ScenarioSpec& spec) {
  // make_instance's sub-seed convention: one seeder, network draw first,
  // workload draw second, so paper workloads on flat/clustered fabrics
  // reproduce the figure sweeps' instances bit-for-bit.
  Rng seeder{spec.seed};
  const std::uint64_t network_seed = seeder.next_u64();
  const std::uint64_t workload_seed = seeder.next_u64();

  NetworkModel network = make_network(spec, network_seed);
  MessageMatrix messages = make_messages(spec, workload_seed);
  CommMatrix comm{network, messages};
  const double lower_bound_s = comm.lower_bound();
  QosSpec qos = make_qos(spec, lower_bound_s);
  std::unique_ptr<Scheduler> scheduler =
      make_spec_scheduler(spec, network, qos);
  return ResolvedScenario{spec,
                          std::move(network),
                          std::move(messages),
                          std::move(comm),
                          lower_bound_s,
                          std::move(qos),
                          std::move(scheduler)};
}

FaultPlan make_fault_plan(const ScenarioSpec& spec, double horizon_s) {
  FaultPlan plan;
  if (!spec.has_faults) return plan;
  const std::size_t n = spec.processors;
  plan.transient_loss_prob = spec.loss;
  plan.seed = spec.seed;

  Rng cut_rng{spec.seed ^ 0xFA17FA17ULL};
  while (plan.cuts.size() < spec.cuts) {
    const auto a = static_cast<std::size_t>(cut_rng.next_below(n));
    const auto b = static_cast<std::size_t>(cut_rng.next_below(n));
    if (a == b) continue;
    plan.cuts.push_back({a, b, 0.0, 1e12});  // outlasts any run
  }

  // Crash the highest-numbered nodes at staggered mid-exchange times.
  for (std::size_t k = 0; k < spec.crashes; ++k)
    plan.crashes.push_back(
        {n - 1 - k, 0.25 * horizon_s * static_cast<double>(k + 1)});

  // Crash-restart windows on the lowest-numbered nodes; waiting them out
  // (the replan path's backoff) recovers the traffic.
  for (std::size_t k = 0; k < spec.restarts; ++k) {
    const double at = (0.05 + 0.1 * static_cast<double>(k)) * horizon_s;
    plan.restarts.push_back({k, at, at + 0.35 * horizon_s});
  }

  Rng rng{spec.seed ^ 0xD15EA5EDULL};
  while (plan.flapping.size() < spec.flaps) {
    const auto a = static_cast<std::size_t>(rng.next_below(n));
    const auto b = static_cast<std::size_t>(rng.next_below(n));
    if (a == b) continue;
    plan.flapping.push_back(
        {a, b, 0.0, horizon_s, std::max(horizon_s / 8.0, 1e-9), 0.3, true});
  }
  while (plan.brownouts.size() < spec.brownouts) {
    const auto a = static_cast<std::size_t>(rng.next_below(n));
    const auto b = static_cast<std::size_t>(rng.next_below(n));
    if (a == b) continue;
    plan.brownouts.push_back(
        {a, b, 0.0, 0.6 * horizon_s, spec.brownout_factor, true});
  }
  return plan;
}

ResilientOptions make_resilient_options(const ScenarioSpec& spec,
                                        double horizon_s) {
  ResilientOptions options;
  if (spec.replan) {
    options.replan.enabled = true;
    options.replan.max_replans = 4;
    options.replan.backoff_base_s = 0.1 * horizon_s;
    options.replan.backoff_factor = 2.0;
  }
  return options;
}

}  // namespace hcs::scenario
