// Scenario execution and the golden-artifact fleet runner.
//
// run_scenario executes one resolved scenario end to end —
// detect/schedule, validate, simulate (static, drifting, or
// fault-injected resilient execution), audit the recorded trace against
// the model invariants, evaluate QoS compliance — and renders one
// deterministic JSON artifact. The artifact is a pure function of the
// spec: fixed key order, format_double-rendered numbers, no timestamps,
// no environment — so a checked-in golden copy is a regression test.
//
// run_scenario_directory is the fleet driver behind `hcs run-scenarios`:
// every *.scn file in a directory runs on the deterministic strided
// ThreadPool (byte-identical results at any thread count), and each
// artifact is compared byte-for-byte against DIR/golden/<name>.json.
// Setting FleetOptions::update_golden (the CLI's --update-golden, or
// HCS_UPDATE_GOLDEN in the environment) regenerates the goldens instead.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/spec.hpp"

namespace hcs::scenario {

/// Outcome of one scenario execution.
struct ScenarioRun {
  /// The deterministic JSON artifact (newline-terminated).
  std::string artifact;
  /// Unmet expectations and audit violations; empty = the run is good.
  std::vector<std::string> failures;

  // Headline numbers, for tests that assert on behavior without parsing
  // the artifact.
  double lower_bound_s = 0.0;
  double planned_s = 0.0;
  double executed_s = 0.0;
  std::size_t undeliverable = 0;
  std::size_t executed_missed_deadlines = 0;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Executes one scenario end to end. Deterministic in `spec`; safe to
/// call concurrently for different specs.
[[nodiscard]] ScenarioRun run_scenario(const ScenarioSpec& spec);

/// How one fleet entry resolved.
enum class FleetStatus {
  kOk,             ///< ran clean, artifact matches its golden
  kUpdated,        ///< ran clean, golden (re)written (update_golden)
  kParseError,     ///< the .scn file failed to parse or validate
  kFailed,         ///< an expectation or audit failed (see detail)
  kGoldenMissing,  ///< ran clean but no golden exists (run --update-golden)
  kGoldenDiff,     ///< ran clean but the artifact differs from the golden
};

/// Stable lower-case status name ("ok", "parse-error", ...).
[[nodiscard]] std::string_view fleet_status_name(FleetStatus status);

/// Fleet-runner configuration.
struct FleetOptions {
  /// Worker threads (0 = one per allowed hardware thread).
  std::size_t threads = 0;
  /// Write artifacts to DIR/golden/ instead of diffing against them.
  bool update_golden = false;
  /// When non-empty, only files whose name contains this substring run.
  std::string filter;
};

/// One scenario file's fleet outcome.
struct FleetEntry {
  std::string file;      ///< scenario file name (no directory)
  std::string scenario;  ///< spec name; empty on parse error
  FleetStatus status = FleetStatus::kOk;
  std::string detail;    ///< diagnostic for non-ok statuses
  std::string artifact;  ///< rendered artifact; empty on parse error
};

/// A whole directory's outcome, in file-name order.
struct FleetResult {
  std::vector<FleetEntry> entries;

  /// True when every entry is kOk or kUpdated.
  [[nodiscard]] bool ok() const;
};

/// Runs every *.scn file under `directory` (not recursive). Scenarios
/// execute on the strided ThreadPool into per-index slots, then goldens
/// are compared (or rewritten) serially in file-name order, so the
/// result is byte-identical at every thread count. Throws InputError
/// when the directory is missing or holds no matching scenario files.
[[nodiscard]] FleetResult run_scenario_directory(const std::string& directory,
                                                 const FleetOptions& options = {});

}  // namespace hcs::scenario
