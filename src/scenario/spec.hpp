// Declarative scenario files: one plain-text file per end-to-end regime.
//
// Scenario diversity used to be hard-coded: every new combination of
// topology, workload, scheduler, fault plan, QoS deadlines, and directory
// drift meant a new bench or example. A .scn file names one such
// combination declaratively; the parser here turns it into a ScenarioSpec
// with strict, line-numbered diagnostics, and scenario/resolve.hpp
// composes the existing generators (workload/scenario.hpp, src/fault,
// src/qos, src/netmodel) into a runnable instance. The fleet runner
// (scenario/runner.hpp) then executes a directory of these files with
// golden-artifact regression, so every future feature is one new file
// plus one checked-in artifact instead of one new bench.
//
// File grammar (see DESIGN.md §scenario for the full reference):
//
//   # comment (full-line or trailing)
//   [section]
//   key = value
//
// Sections: [scenario] (name, seed), [topology] (family, processors,
// sites, drift_sigma, drift_period_s), [workload] (kind, bytes, rows,
// cols, element_bytes), [scheduler] (algorithm, hierarchical, ordering),
// [qos] (deadline_factor, tight_pairs, tight_factor, tight_priority),
// [faults] (crashes, cuts, loss, restarts, flaps, brownouts,
// brownout_factor, replan), [expect] (complete, max_ratio_to_lb,
// deadlines_met, golden). [qos], [faults], and [expect] are optional;
// keys that would be silently ignored (sites on a flat family, ordering
// on a non-QoS scheduler, ...) are rejected, so every accepted file is
// lossless under emit_scenario: parse(emit(parse(text))) ==
// parse(text).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/scheduler.hpp"
#include "qos/qos_scheduler.hpp"
#include "util/error.hpp"

namespace hcs::scenario {

/// Parse or validation failure, carrying the 1-based line the diagnostic
/// anchors to. what() is "line N: <message>"; the runner prefixes the
/// file name.
class ScenarioError : public InputError {
 public:
  ScenarioError(std::size_t line, const std::string& message)
      : InputError("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Which network family the topology section selects.
enum class TopologyFamily {
  kFlat,       ///< GUSTO-guided flat random draw (netmodel/generator.hpp)
  kClustered,  ///< site/WAN clustered family (generate_clustered_network)
  kGusto,      ///< the paper's fixed five-site GUSTO network (Tables 1-2)
};

/// Which message-size workload the workload section selects.
enum class WorkloadKind {
  kSmall,      ///< Figure 9: every message 1 kB
  kLarge,      ///< Figure 10: every message 1 MB
  kMixed,      ///< Figure 11: random mix of 1 kB and 1 MB
  kServers,    ///< Figure 12: 20% servers send 1 MB to clients
  kUniform,    ///< every message `bytes` (workload.bytes)
  kTranspose,  ///< §4.1 row-to-column redistribution (rows x cols)
};

/// One parsed scenario file. Plain data; resolution (network generation,
/// scheduler construction, fault-plan synthesis) lives in resolve.hpp.
struct ScenarioSpec {
  // [scenario]
  std::string name;        ///< required; [A-Za-z0-9_-]+
  std::uint64_t seed = 1;

  // [topology]
  TopologyFamily family = TopologyFamily::kFlat;
  std::size_t processors = 0;  ///< required (kGusto fixes it at 5)
  std::size_t sites = 4;       ///< kClustered only
  double drift_sigma = 0.0;    ///< DriftingDirectory log-sigma; 0 = static
  double drift_period_s = 1.0; ///< only with drift_sigma > 0

  // [workload]
  WorkloadKind workload = WorkloadKind::kMixed;
  std::uint64_t uniform_bytes = 64 * 1024;  ///< kUniform only
  std::size_t transpose_rows = 1024;        ///< kTranspose only
  std::size_t transpose_cols = 1024;        ///< kTranspose only
  std::uint64_t element_bytes = 8;          ///< kTranspose only

  // [scheduler]
  SchedulerKind algorithm = SchedulerKind::kOpenShop;
  bool qos_scheduler = false;  ///< algorithm = qos (deadline-aware)
  QosOrdering ordering = QosOrdering::kEdf;  ///< qos only
  bool hierarchical = false;   ///< wrap in HierarchicalScheduler

  // [qos] — present iff has_qos
  bool has_qos = false;
  double deadline_factor = 2.0;   ///< deadline = factor * t_lb, all pairs
  std::size_t tight_pairs = 0;    ///< seeded pairs with tighter deadlines
  double tight_factor = 0.5;      ///< tight deadline = tight_factor * t_lb
  double tight_priority = 10.0;   ///< priority of the tight pairs

  // [faults] — present iff has_faults; counts follow the hcs fault-sweep
  // conventions (crash-stops staggered on the highest nodes, restarts on
  // the lowest, seeded cut/flap/brownout pairs).
  bool has_faults = false;
  std::size_t crashes = 0;
  std::size_t cuts = 0;
  double loss = 0.0;
  std::size_t restarts = 0;
  std::size_t flaps = 0;
  std::size_t brownouts = 0;
  double brownout_factor = 0.25;
  bool replan = false;

  // [expect]
  bool expect_complete = true;      ///< every message delivered
  double expect_max_ratio = 0.0;    ///< planned/t_lb bound; 0 = unchecked
  bool expect_deadlines_met = false;  ///< no executed deadline misses
  std::string golden;  ///< artifact file name; "" = "<name>.json"

  [[nodiscard]] bool operator==(const ScenarioSpec&) const = default;
};

/// Parses one scenario file. Throws ScenarioError with a 1-based line
/// number on the first syntactic or semantic defect.
[[nodiscard]] ScenarioSpec parse_scenario(std::string_view text);

/// Canonical emission: a .scn file that parses back to exactly `spec`
/// (parse(emit(s)) == s for any spec that came out of parse_scenario).
/// Optional sections are emitted only when present; keys whose value is
/// ignored in the spec's configuration are omitted.
[[nodiscard]] std::string emit_scenario(const ScenarioSpec& spec);

/// Names, as they appear in scenario files.
[[nodiscard]] std::string_view topology_family_name(TopologyFamily family);
[[nodiscard]] std::string_view workload_kind_name(WorkloadKind kind);
[[nodiscard]] std::string_view qos_ordering_name(QosOrdering ordering);

}  // namespace hcs::scenario
