// Dense row-major matrix used for communication matrices, message-size
// matrices, and network-parameter tables.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace hcs {

/// Dense row-major matrix with bounds-checked access.
///
/// The library's matrices are small (P <= a few hundred), so safety is
/// preferred over raw speed: operator() checks indices in all build types.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, value-initialized.
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construction from nested initializer lists; all rows must have equal
  /// length.
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
      if (row.size() != cols_) throw InputError("Matrix: ragged initializer");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
    check(r < rows_ && c < cols_, "Matrix: index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
    check(r < rows_ && c < cols_, "Matrix: index out of range");
    return data_[r * cols_ + c];
  }

  /// Unchecked element access for validated inner loops (LAP scans, bulk
  /// copies) where the bounds check defeats vectorization. Callers must
  /// have established r < rows() && c < cols(); checked operator() stays
  /// the default everywhere else.
  [[nodiscard]] T& unchecked(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& unchecked(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row r.
  [[nodiscard]] std::span<const T> row(std::size_t r) const {
    check(r < rows_, "Matrix: row out of range");
    return {data_.data() + r * cols_, cols_};
  }

  /// Sum of row r.
  [[nodiscard]] T row_sum(std::size_t r) const {
    T total{};
    for (const T& value : row(r)) total += value;
    return total;
  }

  /// Sum of column c.
  [[nodiscard]] T col_sum(std::size_t c) const {
    check(c < cols_, "Matrix: column out of range");
    T total{};
    for (std::size_t r = 0; r < rows_; ++r) total += data_[r * cols_ + c];
    return total;
  }

  /// Applies `fn(r, c, value&)` to every element, row-major.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) fn(r, c, data_[r * cols_ + c]);
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) fn(r, c, data_[r * cols_ + c]);
  }

  /// Element-wise transform into a new matrix of possibly different type.
  template <typename Fn>
  [[nodiscard]] auto map(Fn&& fn) const {
    using U = std::invoke_result_t<Fn, T>;
    Matrix<U> out(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c)
        out(r, c) = fn(data_[r * cols_ + c]);
    return out;
  }

  [[nodiscard]] Matrix transposed() const {
    Matrix out(cols_, rows_);
    for_each([&](std::size_t r, std::size_t c, const T& v) { out(c, r) = v; });
    return out;
  }

  [[nodiscard]] bool operator==(const Matrix& other) const = default;

  /// Underlying storage; row-major, rows()*cols() elements.
  [[nodiscard]] std::span<const T> data() const noexcept { return data_; }

  /// Writable view of the underlying storage, for bulk fills (wire
  /// decode, kernel scatter) where per-element operator() would dominate.
  [[nodiscard]] std::span<T> mutable_data() noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace hcs
