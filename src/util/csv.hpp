// CSV parsing and numeric-matrix I/O.
//
// The CLI tool and external workflows exchange communication matrices as
// CSV. The reader handles RFC-4180 quoting (quoted fields, doubled
// quotes, embedded commas/newlines) and both LF and CRLF line endings;
// the writer mirrors Table::print_csv's escaping.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace hcs {

/// Parses CSV from `in` into rows of string cells. Empty trailing line is
/// ignored; otherwise every line (even empty ones) yields a row. Throws
/// InputError on malformed quoting.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(std::istream& in);

/// Parses one CSV line (no embedded newlines) into cells.
[[nodiscard]] std::vector<std::string> parse_csv_line(const std::string& line);

/// Reads a rectangular numeric matrix from CSV. Throws InputError on
/// ragged rows or non-numeric cells.
[[nodiscard]] Matrix<double> read_csv_matrix(std::istream& in);

/// Writes a numeric matrix as CSV with `digits` significant decimals.
void write_csv_matrix(std::ostream& out, const Matrix<double>& matrix,
                      int digits = 9);

}  // namespace hcs
