#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"

namespace hcs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw InputError("Table: no columns");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw InputError("Table: row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size())
        out << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (char ch : cell) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}

}  // namespace

void Table::print_csv(std::ostream& out) const {
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << csv_escape(row[c]);
      if (c + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string format_double(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

}  // namespace hcs
