// Flat, reusable heap primitives shared by the warm-workspace hot paths.
//
// Both simulation (src/sim/sim_workspace.hpp) and schedule construction
// (src/core/scheduler_workspace.hpp) run event loops whose scratch must
// follow the cleared-never-shrunk discipline: clear() keeps capacity, so
// a warmed structure performs zero heap allocation in steady state. The
// heaps live here, one layer below both users, so the simulator and the
// schedulers share a single implementation (and a single set of tests).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace hcs::detail {

/// Flat array-backed binary min-heap. Semantically equivalent to
/// std::priority_queue with std::greater, but the backing vector is
/// reusable: clear() keeps capacity, so a warmed heap pushes without
/// allocating. push/pop sift a hole through the array — one move per
/// level, like std::push_heap / std::pop_heap — rather than swapping
/// elements. Any correct min-heap pops values in nondecreasing order, and
/// every equal-key collision in the clients involves identical values, so
/// heap layout never influences results.
template <class T>
class FlatMinHeap {
 public:
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  /// Warmed backing-array capacity — the heap's high-water mark.
  [[nodiscard]] std::size_t capacity() const noexcept {
    return items_.capacity();
  }
  [[nodiscard]] const T& top() const { return items_.front(); }

  void clear() noexcept { items_.clear(); }

  void push(const T& value) {
    const T v = value;  // by value: `value` may alias into items_
    items_.push_back(v);
    std::size_t i = items_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!(v < items_[parent])) break;
      items_[i] = items_[parent];
      i = parent;
    }
    items_[i] = v;
  }

  /// Replaces the minimum with `value` in one sift — equivalent to pop()
  /// followed by push(value), but the hole the pop opens at the root is
  /// filled directly. Event loops that pop an event and immediately
  /// schedule its continuation cut their heap traffic nearly in half.
  void replace_top(const T& value) {
    const T v = value;  // by value: `value` may alias into items_
    sift_from_root(v);
  }

  void pop() {
    const T last = items_.back();
    items_.pop_back();
    if (items_.empty()) return;
    sift_from_root(last);
  }

 private:
  /// Fills the root hole with `v`: sink the hole to a leaf along
  /// min-children (one compare per level, no compare against `v`), then
  /// bubble `v` up from there. For a `v` that belongs near the bottom —
  /// pop() reinserts a leaf, replace_top() usually inserts a later
  /// timestamp — the bubble-up stops almost immediately, about half the
  /// compares of the textbook down-sift.
  void sift_from_root(const T& v) {
    const std::size_t n = items_.size();
    std::size_t i = 0;
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && items_[child + 1] < items_[child]) ++child;
      items_[i] = items_[child];
      i = child;
    }
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!(v < items_[parent])) break;
      items_[i] = items_[parent];
      i = parent;
    }
    items_[i] = v;
  }

  std::vector<T> items_;
};

/// Indexed binary min-heap over at most n ids keyed by (time, id): an id's
/// key can be inserted, updated, or removed in O(log n) via a position
/// index. Equal times resolve to the lowest id, matching a naive ascending
/// scan with strict <. The simulator's interleaved model keys receivers by
/// projected completion time; the open-shop scheduler keys senders by port
/// availability.
class IndexedTimeHeap {
 public:
  /// Empties the heap and (re)sizes the position index for ids < n.
  void reset(std::size_t n) {
    pos_.assign(n, kAbsent);
    heap_.clear();
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  /// Warmed backing-array capacity — the heap's high-water mark.
  [[nodiscard]] std::size_t capacity() const noexcept {
    return heap_.capacity();
  }
  [[nodiscard]] double top_time() const { return heap_.front().time; }
  [[nodiscard]] std::size_t top_id() const { return heap_.front().id; }
  [[nodiscard]] bool contains(std::size_t id) const {
    return pos_[id] != kAbsent;
  }

  /// Inserts `id` with key `time`, or changes its key if present.
  void update(std::size_t id, double time) {
    if (pos_[id] == kAbsent) {
      pos_[id] = heap_.size();
      heap_.push_back({time, id});
      sift_up(heap_.size() - 1);
    } else {
      const std::size_t i = pos_[id];
      heap_[i].time = time;
      sift_up(i);
      sift_down(pos_[id]);
    }
  }

  /// Removes `id`; no-op if absent.
  void remove(std::size_t id) {
    if (pos_[id] == kAbsent) return;
    const std::size_t i = pos_[id];
    pos_[id] = kAbsent;
    const Entry last = heap_.back();
    heap_.pop_back();
    if (i == heap_.size()) return;
    heap_[i] = last;
    pos_[last.id] = i;
    sift_up(i);
    sift_down(pos_[last.id]);
  }

 private:
  struct Entry {
    double time;
    std::size_t id;
    [[nodiscard]] bool less_than(const Entry& other) const {
      return time < other.time || (time == other.time && id < other.id);
    }
  };

  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!heap_[i].less_than(heap_[parent])) break;
      swap_entries(i, parent);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t left = 2 * i + 1;
      const std::size_t right = 2 * i + 2;
      if (left < n && heap_[left].less_than(heap_[smallest])) smallest = left;
      if (right < n && heap_[right].less_than(heap_[smallest])) smallest = right;
      if (smallest == i) break;
      swap_entries(i, smallest);
      i = smallest;
    }
  }

  void swap_entries(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a].id] = a;
    pos_[heap_[b].id] = b;
  }

  std::vector<Entry> heap_;
  std::vector<std::size_t> pos_;
};

}  // namespace hcs::detail
