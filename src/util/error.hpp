// Error types shared across the hcs library.
//
// The library follows a simple policy: programming errors (out-of-range
// indices, dimension mismatches) throw `std::logic_error` derivatives;
// violations of scheduling invariants detected at run time throw
// `ScheduleError`; malformed external inputs throw `InputError`.
#pragma once

#include <stdexcept>
#include <string>

namespace hcs {

/// Thrown when a schedule violates a model invariant (overlapping sends,
/// overlapping receives, missing or duplicated communication events).
class ScheduleError : public std::runtime_error {
 public:
  explicit ScheduleError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when externally supplied data (matrices, directory tables,
/// workload descriptions) is malformed.
class InputError : public std::runtime_error {
 public:
  explicit InputError(const std::string& what) : std::runtime_error(what) {}
};

/// Internal consistency check used throughout the library. Unlike assert(),
/// it is active in all build types: scheduling bugs silently producing
/// invalid schedules would corrupt every experiment built on top.
inline void check(bool condition, const char* message) {
  if (!condition) throw std::logic_error(message);
}

}  // namespace hcs
