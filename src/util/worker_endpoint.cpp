#include "util/worker_endpoint.hpp"

#include <cstdlib>
#include <sstream>

namespace hcs {
namespace {

WorkerSpec parse_one(const std::string& item) {
  WorkerSpec spec;
  if (item == "local" || item.rfind("local:", 0) == 0) {
    spec.kind = WorkerSpec::Kind::kLocal;
    spec.count = 1;
    if (item.size() > 6) {
      const std::string count = item.substr(6);
      char* end = nullptr;
      const long parsed = std::strtol(count.c_str(), &end, 10);
      if (end == count.c_str() || *end != '\0' || parsed < 1)
        throw InputError("--workers: local:N needs N >= 1, got '" + item +
                         "'");
      spec.count = static_cast<std::size_t>(parsed);
    }
    return spec;
  }
  if (item.rfind("unix:", 0) == 0) {
    spec.kind = WorkerSpec::Kind::kUnix;
    spec.socket_path = item.substr(5);
    if (spec.socket_path.empty())
      throw InputError("--workers: unix: needs a socket path");
    return spec;
  }
  if (item.rfind("tcp:", 0) == 0) {
    spec.kind = WorkerSpec::Kind::kTcp;
    const std::string rest = item.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0)
      throw InputError("--workers: tcp: needs host:port, got '" + item + "'");
    spec.host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    char* end = nullptr;
    const long parsed = std::strtol(port.c_str(), &end, 10);
    if (end == port.c_str() || *end != '\0' || parsed < 1 || parsed > 65535)
      throw InputError("--workers: tcp port must be in [1, 65535], got '" +
                       item + "'");
    spec.port = static_cast<std::uint16_t>(parsed);
    return spec;
  }
  throw InputError("--workers: unknown endpoint '" + item +
                   "' (expected local[:N], unix:PATH, or tcp:HOST:PORT)");
}

}  // namespace

std::vector<WorkerSpec> parse_worker_specs(const std::string& text) {
  std::vector<WorkerSpec> specs;
  std::stringstream stream{text};
  std::string item;
  while (std::getline(stream, item, ','))
    if (!item.empty()) specs.push_back(parse_one(item));
  if (specs.empty())
    throw InputError("--workers must list at least one endpoint");
  return specs;
}

}  // namespace hcs
