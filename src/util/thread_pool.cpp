#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace hcs {

ThreadPool::ThreadPool(std::size_t size) {
  const std::size_t background = size == 0 ? 0 : size - 1;
  workers_.reserve(background);
  for (std::size_t w = 0; w < background; ++w)
    workers_.emplace_back([this, w] { worker_loop(w + 1); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::resolve_size(std::size_t requested,
                                     std::size_t count) {
  std::size_t size = requested;
  if (size == 0)
    size = std::max<unsigned>(1, std::thread::hardware_concurrency());
  return std::max<std::size_t>(1, std::min(size, count));
}

void ThreadPool::run_stride(
    std::size_t worker, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  try {
    for (std::size_t index = worker; index < count; index += size())
      fn(worker, index);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::run(
    std::size_t count,
    const std::function<void(std::size_t worker, std::size_t index)>& fn) {
  if (count == 0) return;
  if (!workers_.empty()) {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_count_ = count;
    active_ = workers_.size();
    ++generation_;
  }
  start_.notify_all();
  run_stride(0, count, fn);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return active_ == 0; });
    job_ = nullptr;
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* job;
    std::size_t count;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_.wait(lock,
                  [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      job = job_;
      count = job_count_;
    }
    run_stride(worker, count, *job);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_.notify_all();
    }
  }
}

}  // namespace hcs
