#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace hcs {
namespace {

bool affinity_disabled() {
  const char* env = std::getenv("HCS_NO_AFFINITY");
  return env != nullptr && env[0] != '\0';
}

// CPU ids in the process affinity mask, ascending; empty when the
// platform exposes no mask (or the query fails).
std::vector<int> allowed_cpus() {
#ifdef __linux__
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof mask, &mask) != 0) return {};
  std::vector<int> cpus;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu)
    if (CPU_ISSET(cpu, &mask)) cpus.push_back(cpu);
  return cpus;
#else
  return {};
#endif
}

void pin_to_cpu([[maybe_unused]] std::thread& thread,
                [[maybe_unused]] int cpu) {
#ifdef __linux__
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(cpu, &mask);
  // Best effort: a failure (mask shrank, cgroup change) just leaves the
  // worker floating, which is the unpinned behaviour.
  (void)pthread_setaffinity_np(thread.native_handle(), sizeof mask, &mask);
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::size_t size, bool pin_workers) {
  const std::size_t background = size == 0 ? 0 : size - 1;
  workers_.reserve(background);
  for (std::size_t w = 0; w < background; ++w)
    workers_.emplace_back([this, w] { worker_loop(w + 1); });
  if (!pin_workers || affinity_disabled()) return;
  const std::vector<int> cpus = allowed_cpus();
  if (cpus.size() < 2) return;
  // Worker w (1-based; the caller is worker 0 and keeps its own
  // affinity) gets CPU w mod |mask| — spread across the mask, stable
  // across run() calls.
  for (std::size_t w = 0; w < workers_.size(); ++w)
    pin_to_cpu(workers_[w], cpus[(w + 1) % cpus.size()]);
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  start_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::allowed_cpu_count() {
  if (!affinity_disabled()) {
    const std::vector<int> cpus = allowed_cpus();
    if (!cpus.empty()) return cpus.size();
  }
  return std::max<unsigned>(1, std::thread::hardware_concurrency());
}

std::size_t ThreadPool::resolve_size(std::size_t requested,
                                     std::size_t count) {
  std::size_t size = requested;
  if (size == 0) size = allowed_cpu_count();
  return std::max<std::size_t>(1, std::min(size, count));
}

void ThreadPool::run_stride(
    std::size_t worker, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  try {
    for (std::size_t index = worker; index < count; index += size())
      fn(worker, index);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::run(
    std::size_t count,
    const std::function<void(std::size_t worker, std::size_t index)>& fn) {
  if (count == 0) return;
  if (!workers_.empty()) {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_count_ = count;
    active_ = workers_.size();
    ++generation_;
  }
  start_.notify_all();
  run_stride(0, count, fn);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return active_ == 0; });
    job_ = nullptr;
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* job;
    std::size_t count;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_.wait(lock,
                  [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      job = job_;
      count = job_count_;
    }
    run_stride(worker, count, *job);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_.notify_all();
    }
  }
}

}  // namespace hcs
