// Summary statistics for experiment results.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hcs {

/// Online accumulator for mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double value) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of `values` by linear interpolation between order statistics.
/// q in [0, 1]; values need not be sorted. Throws InputError on empty input.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Convenience: median.
[[nodiscard]] double median(std::span<const double> values);

/// Full five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Computes a Summary of `values`. Throws InputError on empty input.
[[nodiscard]] Summary summarize(std::span<const double> values);

}  // namespace hcs
