// Masked argmin / argmax kernels over flat double arrays (AVX-512).
//
// The scheduler hot loops (open-shop event selection, greedy step
// composition) reduce to one primitive: over the lanes named by a bitmask,
// find the extreme value and the lowest index attaining it. The scalar
// form — walk set bits, compare, remember — costs a data-dependent branch
// per candidate; these kernels evaluate all 64 lanes branch-free in a
// handful of vector ops and recover the index with the exact same tie
// rule, so callers swap them in without changing one scheduled event.
//
// Exactness contract: comparisons are IEEE double compares on the stored
// values (no reassociation, no fast-math), and ties resolve to the lowest
// index, matching an ascending-index scalar scan with a strict compare.
// Results are bit-identical to the scalar path for any finite inputs.
//
// Layout contract: arrays are padded so every lane a kernel loads exists —
// argmin64/argmax64 read 64 doubles regardless of the mask; the wide
// variants read word_count * 64. Masked-off lanes never influence the
// result, so padding values are arbitrary (infinities by convention).
//
// The kernels carry `__attribute__((target(...)))` so this header compiles
// without global -mavx512f flags; call sites must gate on has_avx512(),
// which also honours the HCS_FORCE_SCALAR_SCHEDULERS environment variable
// (any non-empty value) so differential tests can exercise both paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HCS_SIMD_ARGMIN_X86 1
#include <immintrin.h>
#else
#define HCS_SIMD_ARGMIN_X86 0
#endif

namespace hcs::simd {

/// Extreme value and the lowest index attaining it.
struct MinLoc {
  double value;
  std::size_t index;
};

/// True when the AVX-512 kernels may be used: the CPU supports the
/// required subsets and HCS_FORCE_SCALAR_SCHEDULERS is not set.
[[nodiscard]] inline bool has_avx512() noexcept {
#if HCS_SIMD_ARGMIN_X86
  static const bool available = [] {
    const char* force = std::getenv("HCS_FORCE_SCALAR_SCHEDULERS");
    if (force != nullptr && force[0] != '\0') return false;
    return bool(__builtin_cpu_supports("avx512f")) &&
           bool(__builtin_cpu_supports("avx512dq"));
  }();
  return available;
#else
  return false;
#endif
}

#if HCS_SIMD_ARGMIN_X86

// The unmasked shuffle intrinsics expand to their masked forms seeded
// with _mm512_undefined_*(), which trips -Wuninitialized at every
// inlining site despite being intentional.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace detail {

/// One masked accumulate: lanes of `x` under `k` that beat `acc` replace
/// the accumulator pair. Strict compare keeps the earlier block on ties.
template <int Cmp>
__attribute__((target("avx512f,avx512dq"), always_inline)) inline void
accumulate(__m512d& acc, __m512i& idx, __m512d x, __mmask8 k, __m512i lanes) {
  const __mmask8 better = _mm512_mask_cmp_pd_mask(k, x, acc, Cmp);
  acc = _mm512_mask_mov_pd(acc, better, x);
  idx = _mm512_mask_mov_epi64(idx, better, lanes);
}

/// Merge accumulator b into a where b covers strictly higher indices:
/// value ties keep a, so a strict compare alone preserves the tie rule.
template <int Cmp>
__attribute__((target("avx512f,avx512dq"), always_inline)) inline void
merge_ordered(__m512d& ba, __m512i& ia, __m512d bb, __m512i ib) {
  const __mmask8 take = _mm512_cmp_pd_mask(bb, ba, Cmp);
  ba = _mm512_mask_mov_pd(ba, take, bb);
  ia = _mm512_mask_mov_epi64(ia, take, ib);
}

/// Merge where index order is unknown: ties take the lower index.
template <int Cmp>
__attribute__((target("avx512f,avx512dq"), always_inline)) inline void
merge_tied(__m512d& ba, __m512i& ia, __m512d bb, __m512i ib) {
  const __mmask8 better = _mm512_cmp_pd_mask(bb, ba, Cmp);
  const __mmask8 eq = _mm512_cmp_pd_mask(bb, ba, _CMP_EQ_OQ);
  const __mmask8 lower = _mm512_cmp_epi64_mask(ib, ia, _MM_CMPINT_LT);
  const __mmask8 take = better | (eq & lower);
  ba = _mm512_mask_mov_pd(ba, take, bb);
  ia = _mm512_mask_mov_epi64(ia, take, ib);
}

/// Cross-lane (value, index) reduction of one accumulator pair: three
/// shuffle levels where value and index reduce together — cheaper in
/// latency than two dependent reduce builtins.
template <int Cmp>
__attribute__((target("avx512f,avx512dq"), always_inline)) inline MinLoc
reduce(__m512d b, __m512i i) {
  __m512d bs = _mm512_shuffle_f64x2(b, b, 0x4E);
  __m512i is = _mm512_shuffle_i64x2(i, i, 0x4E);
  merge_tied<Cmp>(b, i, bs, is);
  bs = _mm512_shuffle_f64x2(b, b, 0xB1);
  is = _mm512_shuffle_i64x2(i, i, 0xB1);
  merge_tied<Cmp>(b, i, bs, is);
  bs = _mm512_shuffle_pd(b, b, 0x55);
  is = _mm512_shuffle_epi32(i, static_cast<_MM_PERM_ENUM>(0x4E));
  merge_tied<Cmp>(b, i, bs, is);
  return {_mm512_cvtsd_f64(b),
          static_cast<std::size_t>(
              _mm_cvtsi128_si64(_mm512_castsi512_si128(i)))};
}

/// Fixed 64-lane masked arg-extreme. Four accumulator chains each own a
/// contiguous 16-lane range, so the inter-chain merges need no index
/// compare; only the final cross-lane reduction resolves ties by index.
template <int Cmp>
__attribute__((target("avx512f,avx512dq"), always_inline)) inline MinLoc
argext64(const double* v, std::uint64_t mask, double identity) {
  const __m512d init = _mm512_set1_pd(identity);
  __m512d b0 = init, b1 = init, b2 = init, b3 = init;
  const __m512i zero = _mm512_setzero_si512();
  __m512i i0 = zero, i1 = zero, i2 = zero, i3 = zero;
  const __m512i lane8 = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
#define HCS_ARGMIN_STEP(acc, idx, w)                                       \
  accumulate<Cmp>(acc, idx, _mm512_loadu_pd(v + 8 * (w)),                  \
                  static_cast<__mmask8>(mask >> (8 * (w))),                \
                  _mm512_add_epi64(_mm512_set1_epi64(8 * (w)), lane8));
  HCS_ARGMIN_STEP(b0, i0, 0) HCS_ARGMIN_STEP(b0, i0, 1)
  HCS_ARGMIN_STEP(b1, i1, 2) HCS_ARGMIN_STEP(b1, i1, 3)
  HCS_ARGMIN_STEP(b2, i2, 4) HCS_ARGMIN_STEP(b2, i2, 5)
  HCS_ARGMIN_STEP(b3, i3, 6) HCS_ARGMIN_STEP(b3, i3, 7)
#undef HCS_ARGMIN_STEP
  merge_ordered<Cmp>(b0, i0, b1, i1);
  merge_ordered<Cmp>(b2, i2, b3, i3);
  merge_ordered<Cmp>(b0, i0, b2, i2);
  return reduce<Cmp>(b0, i0);
}

/// Wide masked arg-extreme over word_count * 64 lanes. Same structure as
/// argext64 with each chain looping over a contiguous quarter of the
/// 8-lane blocks (word_count * 8 blocks total, always divisible by 4).
template <int Cmp>
__attribute__((target("avx512f,avx512dq")))
inline MinLoc argext_wide(const double* v, const std::uint64_t* mask_words,
                          std::size_t word_count, double identity) {
  const __m512d init = _mm512_set1_pd(identity);
  __m512d b0 = init, b1 = init, b2 = init, b3 = init;
  const __m512i zero = _mm512_setzero_si512();
  __m512i i0 = zero, i1 = zero, i2 = zero, i3 = zero;
  const __m512i lane8 = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
  const std::size_t blocks = word_count * 8;
  const std::size_t q = blocks / 4;
#define HCS_ARGMIN_CHAIN(acc, idx, lo, hi)                                 \
  for (std::size_t b = (lo); b < (hi); ++b) {                              \
    accumulate<Cmp>(                                                       \
        acc, idx, _mm512_loadu_pd(v + 8 * b),                              \
        static_cast<__mmask8>(mask_words[b >> 3] >> (8 * (b & 7))),        \
        _mm512_add_epi64(_mm512_set1_epi64(static_cast<long long>(8 * b)), \
                         lane8));                                          \
  }
  HCS_ARGMIN_CHAIN(b0, i0, 0, q)
  HCS_ARGMIN_CHAIN(b1, i1, q, 2 * q)
  HCS_ARGMIN_CHAIN(b2, i2, 2 * q, 3 * q)
  HCS_ARGMIN_CHAIN(b3, i3, 3 * q, blocks)
#undef HCS_ARGMIN_CHAIN
  merge_ordered<Cmp>(b0, i0, b1, i1);
  merge_ordered<Cmp>(b2, i2, b3, i3);
  merge_ordered<Cmp>(b0, i0, b2, i2);
  return reduce<Cmp>(b0, i0);
}

}  // namespace detail

/// Minimum value and lowest attaining index over the lanes set in `mask`.
/// Requires 64 readable doubles at `v`. Empty mask: {+inf, 0}.
__attribute__((target("avx512f,avx512dq"), always_inline)) inline MinLoc
argmin64(const double* v, std::uint64_t mask) {
  return detail::argext64<_CMP_LT_OQ>(
      v, mask, __builtin_huge_val());
}

/// Maximum value and lowest attaining index. Empty mask: {-inf, 0}.
__attribute__((target("avx512f,avx512dq"), always_inline)) inline MinLoc
argmax64(const double* v, std::uint64_t mask) {
  return detail::argext64<_CMP_GT_OQ>(
      v, mask, -__builtin_huge_val());
}

/// argmin64 over word_count * 64 lanes (masks low-to-high word order).
__attribute__((target("avx512f,avx512dq")))
inline MinLoc argmin_wide(const double* v, const std::uint64_t* mask_words,
                          std::size_t word_count) {
  return detail::argext_wide<_CMP_LT_OQ>(v, mask_words, word_count,
                                         __builtin_huge_val());
}

/// argmax64 over word_count * 64 lanes (masks low-to-high word order).
__attribute__((target("avx512f,avx512dq")))
inline MinLoc argmax_wide(const double* v, const std::uint64_t* mask_words,
                          std::size_t word_count) {
  return detail::argext_wide<_CMP_GT_OQ>(v, mask_words, word_count,
                                         -__builtin_huge_val());
}

#pragma GCC diagnostic pop

#endif  // HCS_SIMD_ARGMIN_X86

}  // namespace hcs::simd
