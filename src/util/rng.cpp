#include "util/rng.hpp"

#include <cmath>

namespace hcs {
namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  // 53 high bits -> uniform in [0, 1) with full double resolution.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire-style rejection: reject the biased low range.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t value = next_u64();
    if (value >= threshold) return value % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::bernoulli(double p) noexcept { return next_double() < p; }

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

Rng Rng::split() noexcept { return Rng{next_u64()}; }

}  // namespace hcs
