#include "util/csv.hpp"

#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace hcs {
namespace {

/// CSV state machine over one character stream.
class CsvParser {
 public:
  explicit CsvParser(std::istream& in) : in_(in) {}

  [[nodiscard]] std::vector<std::vector<std::string>> parse() {
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> row;
    std::string cell;
    bool in_quotes = false;
    bool cell_started = false;
    bool row_started = false;

    const auto end_cell = [&] {
      row.push_back(std::move(cell));
      cell.clear();
      cell_started = false;
    };
    const auto end_row = [&] {
      end_cell();
      rows.push_back(std::move(row));
      row.clear();
      row_started = false;
    };

    char ch = 0;
    while (in_.get(ch)) {
      if (in_quotes) {
        if (ch == '"') {
          if (in_.peek() == '"') {
            (void)in_.get(ch);
            cell += '"';
          } else {
            in_quotes = false;
          }
        } else {
          cell += ch;
        }
        continue;
      }
      switch (ch) {
        case '"':
          if (cell_started && !cell.empty())
            throw InputError("CSV: quote inside unquoted cell");
          in_quotes = true;
          cell_started = true;
          row_started = true;
          break;
        case ',':
          end_cell();
          row_started = true;
          break;
        case '\r':
          break;  // swallow; the '\n' ends the row
        case '\n':
          end_row();
          break;
        default:
          cell += ch;
          cell_started = true;
          row_started = true;
          break;
      }
    }
    if (in_quotes) throw InputError("CSV: unterminated quoted cell");
    if (row_started || cell_started || !row.empty()) end_row();
    return rows;
  }

 private:
  std::istream& in_;
};

}  // namespace

std::vector<std::vector<std::string>> parse_csv(std::istream& in) {
  return CsvParser{in}.parse();
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::istringstream in{line};
  const auto rows = parse_csv(in);
  if (rows.empty()) return {};
  if (rows.size() != 1) throw InputError("CSV: embedded newline in line parse");
  return rows.front();
}

Matrix<double> read_csv_matrix(std::istream& in) {
  const auto rows = parse_csv(in);
  if (rows.empty()) throw InputError("CSV matrix: empty input");
  const std::size_t cols = rows.front().size();
  Matrix<double> matrix(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != cols) throw InputError("CSV matrix: ragged rows");
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = rows[r][c];
      char* end = nullptr;
      const double value = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0')
        throw InputError("CSV matrix: non-numeric cell '" + cell + "'");
      matrix(r, c) = value;
    }
  }
  return matrix;
}

void write_csv_matrix(std::ostream& out, const Matrix<double>& matrix,
                      int digits) {
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    for (std::size_t c = 0; c < matrix.cols(); ++c) {
      out << format_double(matrix(r, c), digits);
      if (c + 1 < matrix.cols()) out << ',';
    }
    out << '\n';
  }
}

}  // namespace hcs
