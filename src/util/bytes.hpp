// Little-endian byte codec building blocks.
//
// ByteWriter and ByteCursor are the sequential encode/decode primitives
// shared by every binary format in the tree: the service wire protocol
// (src/service/wire.cpp) and the sweep shard codec
// (src/experiment/sweep_shard.cpp). Both formats are little-endian on
// the wire with doubles carried as IEEE-754 u64 bit patterns; on
// little-endian hosts scalars and whole u64 arrays move with memcpy, and
// a shift-based fallback keeps the format identical on big-endian hosts.
//
// The classes are templated on the exception type so each format throws
// its own error (WireError, SweepShardError) without this header pulling
// in either layer — that independence is what lets the experiment layer
// encode shards without depending on src/service.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace hcs {

inline constexpr bool kHostIsLittleEndian =
    std::endian::native == std::endian::little;

/// Sequential writer over a pre-sized region of `out`: the caller
/// declares the payload size once, then fields land via memcpy instead of
/// repeated push_back growth checks. Throws `Error` on size-formula
/// drift (finish() with unwritten bytes).
template <typename Error>
class ByteWriter {
 public:
  ByteWriter(std::vector<std::uint8_t>& out, std::size_t bytes)
      : out_(out), pos_(out.size()) {
    out_.resize(out_.size() + bytes);
  }

  void u8(std::uint8_t v) { out_[pos_++] = v; }
  void u16(std::uint16_t v) { put_scalar(v); }
  void u32(std::uint32_t v) { put_scalar(v); }
  void u64(std::uint64_t v) { put_scalar(v); }
  void f64(double v) { put_scalar(std::bit_cast<std::uint64_t>(v)); }

  /// Bulk little-endian u64 block — one memcpy on LE hosts.
  void u64_block(std::span<const std::uint64_t> values) {
    if constexpr (kHostIsLittleEndian) {
      std::memcpy(out_.data() + pos_, values.data(), 8 * values.size());
      pos_ += 8 * values.size();
    } else {
      for (const std::uint64_t v : values) u64(v);
    }
  }

  /// Bulk double block, carried as u64 bit patterns.
  void f64_block(std::span<const double> values) {
    if constexpr (kHostIsLittleEndian) {
      std::memcpy(out_.data() + pos_, values.data(), 8 * values.size());
      pos_ += 8 * values.size();
    } else {
      for (const double v : values) f64(v);
    }
  }

  /// All declared bytes must be written — catches size-formula drift.
  void finish() const {
    if (pos_ != out_.size())
      throw Error("bytes: encoder size mismatch (internal)");
  }

 private:
  template <typename T>
  void put_scalar(T v) {
    if constexpr (kHostIsLittleEndian) {
      std::memcpy(out_.data() + pos_, &v, sizeof v);
      pos_ += sizeof v;
    } else {
      for (std::size_t k = 0; k < sizeof v; ++k)
        out_[pos_++] = static_cast<std::uint8_t>(v >> (8 * k));
    }
  }

  std::vector<std::uint8_t>& out_;
  std::size_t pos_;
};

/// Bounds-checked sequential reader over a payload. Throws `Error` on
/// any read past the end or on trailing bytes at expect_exhausted().
template <typename Error>
class ByteCursor {
 public:
  explicit ByteCursor(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  [[nodiscard]] std::uint16_t u16() { return scalar<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return scalar<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return scalar<std::uint64_t>(); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  /// Bulk little-endian u64 block — one memcpy on LE hosts.
  void u64_block(std::span<std::uint64_t> dst) {
    need(8 * dst.size());
    if constexpr (kHostIsLittleEndian) {
      std::memcpy(dst.data(), bytes_.data() + pos_, 8 * dst.size());
      pos_ += 8 * dst.size();
    } else {
      for (std::uint64_t& v : dst) v = u64();
    }
  }

  /// Bulk double block, carried as u64 bit patterns.
  void f64_block(std::span<double> dst) {
    need(8 * dst.size());
    if constexpr (kHostIsLittleEndian) {
      std::memcpy(dst.data(), bytes_.data() + pos_, 8 * dst.size());
      pos_ += 8 * dst.size();
    } else {
      for (double& v : dst) v = f64();
    }
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  /// Remaining bytes as a string (used by error messages and scrapes).
  [[nodiscard]] std::string rest_as_string() {
    std::string text(reinterpret_cast<const char*>(bytes_.data()) + pos_,
                     remaining());
    pos_ = bytes_.size();
    return text;
  }
  void expect_exhausted(const char* what) const {
    if (pos_ != bytes_.size())
      throw Error(std::string(what) + ": trailing bytes in payload");
  }

 private:
  template <typename T>
  [[nodiscard]] T scalar() {
    need(sizeof(T));
    T v{};
    if constexpr (kHostIsLittleEndian) {
      std::memcpy(&v, bytes_.data() + pos_, sizeof v);
      pos_ += sizeof v;
    } else {
      for (std::size_t k = 0; k < sizeof v; ++k)
        v = static_cast<T>(v | (static_cast<T>(bytes_[pos_++]) << (8 * k)));
    }
    return v;
  }

  void need(std::size_t n) const {
    if (bytes_.size() - pos_ < n) throw Error("bytes: truncated payload");
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace hcs
