#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hcs {

void RunningStats::add(double value) noexcept {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) throw InputError("quantile: empty sample");
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(position);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = position - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> values) { return quantile(values, 0.5); }

Summary summarize(std::span<const double> values) {
  if (values.empty()) throw InputError("summarize: empty sample");
  RunningStats stats;
  for (double v : values) stats.add(v);
  Summary s;
  s.count = stats.count();
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  s.min = stats.min();
  s.max = stats.max();
  s.p25 = quantile(values, 0.25);
  s.median = quantile(values, 0.5);
  s.p75 = quantile(values, 0.75);
  return s;
}

}  // namespace hcs
