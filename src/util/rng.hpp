// Deterministic pseudo-random number generation.
//
// Every randomized component of the library (network generators, workload
// generators, drifting directories) takes an explicit 64-bit seed and owns
// its own generator — there is no global RNG state, so every experiment is
// reproducible from its printed seed.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded via splitmix64,
// chosen for speed, quality, and a trivially portable implementation that
// produces identical streams on every platform (unlike std::mt19937's
// distributions, whose outputs are implementation-defined).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace hcs {

/// splitmix64 step; used to expand a single seed into generator state.
/// Exposed because tests and hashing utilities reuse it.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** pseudo-random generator with explicit seeding and
/// portable, implementation-independent distributions.
class Rng {
 public:
  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0. Uses rejection
  /// sampling, so the result is exactly uniform.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Standard normal variate (Box–Muller; one value per call, the pair's
  /// second value is cached).
  [[nodiscard]] double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Log-normal variate parameterized by the underlying normal's mu/sigma.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept;

  /// Fisher–Yates shuffle of `values`.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator; used to give parallel
  /// experiment repetitions decorrelated, reproducible streams.
  [[nodiscard]] Rng split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace hcs
