// Worker backend abstraction for distributed work dispatch.
//
// A WorkerEndpoint is anything that can execute one opaque request blob
// and return one opaque result blob: an in-process worker, a daemon on a
// UNIX socket, a daemon across the network over TCP. The distributed
// sweep driver (src/service/sweep_driver.hpp) dispatches shard requests
// through this interface and is thereby transport-agnostic; the shard
// payloads themselves are defined by src/experiment/sweep_shard.hpp.
//
// Endpoints are described by worker specs, the `--workers` flag syntax:
//
//   local:N            N in-process workers (threads in the driver)
//   unix:/path.sock    an hcsd daemon on a UNIX-domain socket
//   tcp:host:port      an hcsd daemon on a TCP listener
//
// parse_worker_specs splits a comma-separated list of those into specs;
// transport construction lives with the service layer (the only code
// that knows sockets).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace hcs {

/// Thrown when a worker backend fails (connect, timeout, short read,
/// peer error). The dispatcher treats it as "this shard did not run
/// here" and re-dispatches elsewhere.
class EndpointError : public std::runtime_error {
 public:
  explicit EndpointError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One worker backend: executes one request, returns one result.
/// Implementations must be safe to call from the one dispatcher thread
/// that owns them (the driver gives each endpoint its own thread; no
/// cross-thread sharing).
class WorkerEndpoint {
 public:
  virtual ~WorkerEndpoint() = default;

  /// Display name for progress and failure reporting ("local",
  /// "unix:/tmp/w0.sock", "tcp:host:9000").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Executes one request and returns the raw result payload. Throws
  /// EndpointError on any transport or peer failure; after a throw the
  /// endpoint may be retried or abandoned, but must not be left holding
  /// resources.
  [[nodiscard]] virtual std::vector<std::uint8_t> run_shard(
      std::span<const std::uint8_t> request) = 0;
};

/// Parsed form of one `--workers` list element.
struct WorkerSpec {
  enum class Kind { kLocal, kUnix, kTcp };
  Kind kind = Kind::kLocal;
  std::size_t count = 1;     ///< kLocal: how many in-process workers
  std::string socket_path;   ///< kUnix
  std::string host;          ///< kTcp
  std::uint16_t port = 0;    ///< kTcp
};

/// Parses a comma-separated worker list ("local:2,unix:/tmp/w.sock,
/// tcp:host:9000"). "local" without a count means local:1. Throws
/// InputError on malformed entries.
[[nodiscard]] std::vector<WorkerSpec> parse_worker_specs(
    const std::string& text);

}  // namespace hcs
