// Fixed-size worker pool with deterministic strided scheduling.
//
// The experiment sweeps parallelize over repetitions. Two properties
// matter more than raw scheduling cleverness there:
//
//  * Determinism: pool.run(count, fn) always hands worker w the indexes
//    w, w + size, w + 2*size, ... Which thread runs an index — and the
//    order of indexes within one worker — is a pure function of (count,
//    size), never of timing. Combined with per-index result slots a
//    caller gets output that is byte-identical at any thread count.
//  * Reuse: workers are spawned once and parked between run() calls, so
//    a sweep over many processor counts pays thread start-up once.
//
// The calling thread participates as worker 0, so a pool of size 1 runs
// everything inline with no synchronization beyond a branch, and a pool
// of size T uses T-1 background threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hcs {

/// Worker pool; see the file comment for the scheduling contract.
/// run() is not reentrant and the pool must not be shared by concurrent
/// callers — one sweep, one pool.
class ThreadPool {
 public:
  /// A pool of `size` workers (clamped to at least 1): the calling
  /// thread plus size - 1 background threads.
  ///
  /// With `pin_workers` (the default) each background thread is pinned
  /// round-robin over the CPUs in the process affinity mask, so a worker
  /// keeps its cache- and NUMA-locality instead of migrating between
  /// runs; the calling thread is never re-pinned. Pinning is skipped on
  /// platforms without affinity support, when the mask has a single CPU,
  /// or when HCS_NO_AFFINITY is set (non-empty). Placement never affects
  /// results — the strided index assignment stays a pure function of
  /// (count, size).
  explicit ThreadPool(std::size_t size, bool pin_workers = true);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept {
    return workers_.size() + 1;
  }

  /// Runs fn(worker, index) for every index in [0, count), worker w
  /// taking indexes w, w + size, ... Blocks until all indexes finished.
  /// If any invocation throws, the first exception (in an unspecified
  /// interleaving) is rethrown after the run completes; remaining
  /// indexes still run.
  void run(std::size_t count,
           const std::function<void(std::size_t worker, std::size_t index)>& fn);

  /// Threads worth using for `count` independent tasks when the caller
  /// asked for `requested` (0 = one per *allowed* hardware thread: the
  /// process's CPU affinity mask where the platform exposes one, falling
  /// back to hardware_concurrency). Containers and batch schedulers
  /// routinely confine a process to a slice of a big machine;
  /// hardware_concurrency over-sizes the pool there, oversubscribing the
  /// slice. Setting HCS_NO_AFFINITY (any non-empty value) restores the
  /// hardware_concurrency behaviour.
  [[nodiscard]] static std::size_t resolve_size(std::size_t requested,
                                                std::size_t count);

  /// Number of CPUs this process may run on: the affinity mask's
  /// population where available (Linux), else hardware_concurrency; at
  /// least 1. Honours HCS_NO_AFFINITY like resolve_size.
  [[nodiscard]] static std::size_t allowed_cpu_count();

 private:
  void worker_loop(std::size_t worker);
  void run_stride(std::size_t worker, std::size_t count,
                  const std::function<void(std::size_t, std::size_t)>& fn);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_;
  std::condition_variable done_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace hcs
