// Plain-text and CSV table rendering for benchmark output.
//
// Every bench binary prints the series a paper table/figure reports; this
// module renders those series as aligned ASCII tables (human-readable) and
// CSV (machine-readable).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hcs {

/// A simple column-aligned text table.
///
/// Usage:
///   Table t({"P", "baseline", "openshop"});
///   t.add_row({"10", "4.32", "1.05"});
///   t.print(std::cout);
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders as an aligned ASCII table with a header separator.
  void print(std::ostream& out) const;

  /// Renders as CSV (RFC-4180-style quoting for cells containing commas,
  /// quotes, or newlines).
  void print_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places, trimming a
/// fixed-width representation suitable for tables.
[[nodiscard]] std::string format_double(double value, int digits = 3);

}  // namespace hcs
