#include "experiment/sweep_units.hpp"

#include <memory>

#include "core/hierarchical_scheduler.hpp"
#include "netmodel/directory.hpp"
#include "sim/send_program.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hcs {

void validate_experiment_config(const ExperimentConfig& config) {
  if (config.processor_counts.empty() || config.repetitions == 0 ||
      config.schedulers.empty())
    throw InputError("run_experiment: empty config");
  if (config.execute && (!config.execution.initial_send_avail.empty() ||
                         !config.execution.initial_recv_avail.empty()))
    throw InputError(
        "run_experiment: execution options must not carry initial "
        "availability vectors");
}

std::uint64_t sweep_instance_seed(std::uint64_t base,
                                  std::size_t processor_count,
                                  std::size_t repetition) {
  std::uint64_t state = base ^ (0x9E3779B97F4A7C15ULL * (processor_count + 1)) ^
                        (0xC2B2AE3D27D4EB4FULL * (repetition + 1));
  return splitmix64(state);
}

void SweepUnitRunner::run(std::size_t unit, std::span<double> out) {
  const ExperimentConfig& config = *config_;
  const SweepUnitSpace space = SweepUnitSpace::of(config);
  const std::size_t processors =
      config.processor_counts[space.point_of(unit)];
  const std::size_t rep = space.repetition_of(unit);
  const std::size_t sched_count = config.schedulers.size();

  const std::uint64_t seed =
      sweep_instance_seed(config.base_seed, processors, rep);
  const ProblemInstance instance =
      make_instance(config.scenario, processors, seed, config.cluster_count);
  const CommMatrix comm{instance.network, instance.messages};
  const double lower_bound = comm.lower_bound();
  out[0] = lower_bound;
  if (metrics_ != nullptr) metrics_->counter("experiment.instances").add();
  // One detection per instance, shared by every scheduler.
  Clustering clustering;
  if (config.hierarchical)
    clustering = detect_clusters(instance.network, config.cluster_options);

  for (std::size_t s = 0; s < sched_count; ++s) {
    std::unique_ptr<Scheduler> scheduler;
    if (config.hierarchical) {
      HierarchicalScheduler::Options options;
      options.inner = config.schedulers[s];
      options.seed = seed;
      scheduler = std::make_unique<HierarchicalScheduler>(clustering, options);
    } else {
      scheduler = make_scheduler(config.schedulers[s], seed);
    }
    const Schedule schedule = scheduler->schedule(comm);
    if (config.validate) schedule.validate(comm);
    const double completion = schedule.completion_time();
    out[1 + s] = completion;
    if (metrics_ != nullptr) {
      metrics_->counter("experiment.schedules").add();
      metrics_->histogram("experiment.completion_s").observe(completion);
      if (lower_bound > 0.0)
        metrics_->histogram("experiment.ratio_to_lb")
            .observe(completion / lower_bound);
    }
    if (config.execute) {
      const StaticDirectory directory{instance.network};
      const NetworkSimulator simulator{directory, instance.messages};
      simulator.run_into(SendProgram::from_schedule(schedule),
                         config.execution, workspace_, sim_result_);
      out[1 + sched_count + s] = sim_result_.completion_time;
      if (metrics_ != nullptr) {
        metrics_->counter("sim.events").add(sim_result_.events.size());
        metrics_->counter("sim.failed_attempts")
            .add(sim_result_.failed_attempts);
        metrics_->histogram("sim.completion_s")
            .observe(sim_result_.completion_time);
        metrics_->histogram("sim.sender_wait_s")
            .observe(sim_result_.total_sender_wait_s);
      }
    }
  }
}

void run_sweep_units(const ExperimentConfig& config, std::size_t begin,
                     std::size_t end, std::span<double> out,
                     MetricsRegistry* metrics) {
  const SweepUnitSpace space = SweepUnitSpace::of(config);
  const std::size_t vpu = space.values_per_unit();
  if (begin > end || end > space.total_units())
    throw InputError("run_sweep_units: unit range out of bounds");
  if (out.size() != (end - begin) * vpu)
    throw InputError("run_sweep_units: output span size mismatch");
  SweepUnitRunner runner(config, metrics);
  for (std::size_t unit = begin; unit < end; ++unit)
    runner.run(unit, out.subspan((unit - begin) * vpu, vpu));
}

ExperimentResult assemble_experiment_result(const ExperimentConfig& config,
                                            std::span<const double> values) {
  const SweepUnitSpace space = SweepUnitSpace::of(config);
  const std::size_t vpu = space.values_per_unit();
  if (values.size() != space.total_units() * vpu)
    throw InputError(
        "assemble_experiment_result: value vector size mismatch");

  ExperimentResult result;
  result.config = config;
  result.series.reserve(config.schedulers.size());
  for (const SchedulerKind kind : config.schedulers)
    result.series.push_back({kind, {}, {}, {}, {}});

  const std::size_t sched_count = config.schedulers.size();
  for (std::size_t p = 0; p < space.points; ++p) {
    RunningStats lower_bound_stats;
    std::vector<RunningStats> completion_stats(sched_count);
    std::vector<RunningStats> ratio_stats(sched_count);
    std::vector<RunningStats> executed_stats(sched_count);
    for (std::size_t rep = 0; rep < space.repetitions; ++rep) {
      const double* unit_values =
          values.data() + (p * space.repetitions + rep) * vpu;
      const double lower_bound = unit_values[0];
      lower_bound_stats.add(lower_bound);
      for (std::size_t s = 0; s < sched_count; ++s) {
        const double completion = unit_values[1 + s];
        completion_stats[s].add(completion);
        ratio_stats[s].add(lower_bound > 0.0 ? completion / lower_bound : 1.0);
        if (config.execute)
          executed_stats[s].add(unit_values[1 + sched_count + s]);
      }
    }

    result.mean_lower_bound_s.push_back(lower_bound_stats.mean());
    for (std::size_t s = 0; s < sched_count; ++s) {
      result.series[s].mean_completion_s.push_back(completion_stats[s].mean());
      result.series[s].mean_ratio_to_lb.push_back(ratio_stats[s].mean());
      result.series[s].max_ratio_to_lb.push_back(ratio_stats[s].max());
      if (config.execute)
        result.series[s].mean_executed_s.push_back(executed_stats[s].mean());
    }
  }
  return result;
}

}  // namespace hcs
