// Sweep shard codec and executor.
//
// A shard is one contiguous block [unit_begin, unit_end) of a sweep's
// global work-unit index space (experiment/sweep_units.hpp for figure
// sweeps, the crash-severity rows of experiment/fault_sweep.hpp for
// fault sweeps), together with the full sweep spec needed to compute it
// from scratch. Requests and results are flat little-endian blobs (via
// util/bytes.hpp) so they travel opaquely over any transport: the
// service wire protocol carries them as kSweepRequest/kSweepResult
// frames, and the in-process endpoint hands them straight to
// handle_sweep_shard.
//
// The codec ships everything a worker needs and nothing it doesn't:
// processor counts, schedulers, seeds, simulator options — but no
// thread counts (shards run serially inside one daemon worker slot) and
// no metrics sinks (pointers cannot travel; the driver's merge is
// values-only). A fault shard additionally carries the fault-free
// baseline computed once by the driver, because the baseline fixes
// every row's fault horizon and must be identical across workers.
//
// Determinism contract: decode(encode(x)) == x exactly (doubles travel
// as bit patterns), and handle_sweep_shard(request) depends only on the
// request bytes — so any worker, local or remote, returns the same
// result bytes for the same shard.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "experiment/experiment.hpp"
#include "experiment/fault_sweep.hpp"
#include "util/error.hpp"
#include "util/worker_endpoint.hpp"

namespace hcs {

/// Thrown on any malformed shard payload: truncated or oversized
/// fields, unknown enum values, out-of-range unit bounds.
class SweepShardError : public InputError {
 public:
  explicit SweepShardError(const std::string& what) : InputError(what) {}
};

/// Shard payload format version.
inline constexpr std::uint8_t kSweepShardVersion = 1;

/// Which sweep family a shard belongs to.
enum class SweepKind : std::uint8_t {
  kFigure = 1,  ///< (P, repetition) units of a figure sweep
  kFault = 2,   ///< crash-severity rows of a fault sweep
};

/// One shard request: the sweep spec plus the unit block to compute.
/// Exactly one of `figure` / `fault` is meaningful, per `kind`.
struct SweepShardRequest {
  SweepKind kind = SweepKind::kFigure;
  ExperimentConfig figure;       ///< kFigure (threads/metrics not shipped)
  FaultSweepConfig fault;        ///< kFault (threads not shipped)
  double fault_baseline_s = 0.0; ///< kFault: driver-computed baseline
  std::uint32_t unit_begin = 0;
  std::uint32_t unit_end = 0;    ///< exclusive
};

/// One shard result: the per-unit accumulator values for the block.
struct SweepShardResult {
  SweepKind kind = SweepKind::kFigure;
  std::uint32_t unit_begin = 0;
  std::uint32_t unit_count = 0;
  std::uint32_t values_per_unit = 0;
  std::vector<double> values;  ///< unit_count * values_per_unit, unit-major
};

// --- codecs (pure; throw SweepShardError on malformed input) ------------

/// Throws SweepShardError when the figure config carries state the codec
/// cannot ship (a metrics sink, initial availability vectors, a fault
/// model on the execution options).
[[nodiscard]] std::vector<std::uint8_t> encode_sweep_shard_request(
    const SweepShardRequest& request);
[[nodiscard]] SweepShardRequest decode_sweep_shard_request(
    std::span<const std::uint8_t> payload);

[[nodiscard]] std::vector<std::uint8_t> encode_sweep_shard_result(
    const SweepShardResult& result);
[[nodiscard]] SweepShardResult decode_sweep_shard_result(
    std::span<const std::uint8_t> payload);

// --- execution ----------------------------------------------------------

/// The worker side, bytes to bytes: decode the request, run its units
/// serially, encode the result. Shared verbatim by the daemon's sweep
/// handler and the in-process endpoint — which is what makes local and
/// remote workers interchangeable. Throws SweepShardError (malformed
/// request) or InputError (config validation). `units_out`, when set,
/// receives the shard's unit count (for the daemon's metrics).
[[nodiscard]] std::vector<std::uint8_t> handle_sweep_shard(
    std::span<const std::uint8_t> request, std::size_t* units_out = nullptr);

/// In-process worker backend: run_shard == handle_sweep_shard. The
/// `local:N` spec expands to N of these, each driven by its own
/// dispatcher thread.
class LocalSweepEndpoint final : public WorkerEndpoint {
 public:
  [[nodiscard]] std::string name() const override { return "local"; }
  [[nodiscard]] std::vector<std::uint8_t> run_shard(
      std::span<const std::uint8_t> request) override {
    return handle_sweep_shard(request);
  }
};

}  // namespace hcs
