#include "experiment/experiment.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "core/hierarchical_scheduler.hpp"
#include "netmodel/directory.hpp"
#include "sim/send_program.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace hcs {
namespace {

/// Stable per-(P, repetition) seed derived from the base seed.
std::uint64_t instance_seed(std::uint64_t base, std::size_t processor_count,
                            std::size_t repetition) {
  std::uint64_t state = base ^ (0x9E3779B97F4A7C15ULL * (processor_count + 1)) ^
                        (0xC2B2AE3D27D4EB4FULL * (repetition + 1));
  return splitmix64(state);
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  if (config.processor_counts.empty() || config.repetitions == 0 ||
      config.schedulers.empty())
    throw InputError("run_experiment: empty config");
  if (config.execute && (!config.execution.initial_send_avail.empty() ||
                         !config.execution.initial_recv_avail.empty()))
    throw InputError(
        "run_experiment: execution options must not carry initial "
        "availability vectors");

  ExperimentResult result;
  result.config = config;
  result.series.reserve(config.schedulers.size());
  for (const SchedulerKind kind : config.schedulers)
    result.series.push_back({kind, {}, {}, {}});

  const std::size_t workers =
      ThreadPool::resolve_size(config.threads, config.repetitions);
  ThreadPool pool{workers};

  // Execution-pass scratch, one per worker and reused across the whole
  // sweep: after warm-up a repetition's simulation allocates nothing.
  std::vector<SimWorkspace> worker_workspace(config.execute ? workers : 0);
  std::vector<SimResult> worker_sim_result(config.execute ? workers : 0);
  // Per-worker metric registries, merged in worker order at the end.
  std::vector<MetricsRegistry> worker_metrics(
      config.metrics != nullptr ? workers : 0);

  const std::size_t sched_count = config.schedulers.size();
  // Per-repetition result slots. Every repetition writes only its own
  // slots, and the slots are folded into the statistics serially in
  // repetition order below — so the result is byte-identical to a serial
  // run at any thread count.
  std::vector<double> rep_lower_bound(config.repetitions);
  std::vector<double> rep_completion(config.repetitions * sched_count);
  std::vector<double> rep_executed(
      config.execute ? config.repetitions * sched_count : 0);

  for (const std::size_t processors : config.processor_counts) {
    const auto run_repetition = [&](std::size_t worker, std::size_t rep) {
      const std::uint64_t seed =
          instance_seed(config.base_seed, processors, rep);
      const ProblemInstance instance =
          make_instance(config.scenario, processors, seed,
                        config.cluster_count);
      const CommMatrix comm{instance.network, instance.messages};
      const double lower_bound = comm.lower_bound();
      rep_lower_bound[rep] = lower_bound;
      MetricsRegistry* const metrics =
          config.metrics != nullptr ? &worker_metrics[worker] : nullptr;
      if (metrics != nullptr) metrics->counter("experiment.instances").add();
      // One detection per instance, shared by every scheduler.
      Clustering clustering;
      if (config.hierarchical)
        clustering = detect_clusters(instance.network, config.cluster_options);

      for (std::size_t s = 0; s < sched_count; ++s) {
        std::unique_ptr<Scheduler> scheduler;
        if (config.hierarchical) {
          HierarchicalScheduler::Options options;
          options.inner = config.schedulers[s];
          options.seed = seed;
          scheduler = std::make_unique<HierarchicalScheduler>(clustering,
                                                              options);
        } else {
          scheduler = make_scheduler(config.schedulers[s], seed);
        }
        const Schedule schedule = scheduler->schedule(comm);
        if (config.validate) schedule.validate(comm);
        const double completion = schedule.completion_time();
        rep_completion[rep * sched_count + s] = completion;
        if (metrics != nullptr) {
          metrics->counter("experiment.schedules").add();
          metrics->histogram("experiment.completion_s").observe(completion);
          if (lower_bound > 0.0)
            metrics->histogram("experiment.ratio_to_lb")
                .observe(completion / lower_bound);
        }
        if (config.execute) {
          const StaticDirectory directory{instance.network};
          const NetworkSimulator simulator{directory, instance.messages};
          simulator.run_into(SendProgram::from_schedule(schedule),
                             config.execution, worker_workspace[worker],
                             worker_sim_result[worker]);
          rep_executed[rep * sched_count + s] =
              worker_sim_result[worker].completion_time;
          if (metrics != nullptr) {
            const SimResult& sim = worker_sim_result[worker];
            metrics->counter("sim.events").add(sim.events.size());
            metrics->counter("sim.failed_attempts").add(sim.failed_attempts);
            metrics->histogram("sim.completion_s").observe(sim.completion_time);
            metrics->histogram("sim.sender_wait_s")
                .observe(sim.total_sender_wait_s);
          }
        }
      }
    };

    pool.run(config.repetitions, run_repetition);

    RunningStats lower_bound_stats;
    std::vector<RunningStats> completion_stats(sched_count);
    std::vector<RunningStats> ratio_stats(sched_count);
    std::vector<RunningStats> executed_stats(sched_count);
    for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
      const double lower_bound = rep_lower_bound[rep];
      lower_bound_stats.add(lower_bound);
      for (std::size_t s = 0; s < sched_count; ++s) {
        const double completion = rep_completion[rep * sched_count + s];
        completion_stats[s].add(completion);
        ratio_stats[s].add(lower_bound > 0.0 ? completion / lower_bound : 1.0);
        if (config.execute)
          executed_stats[s].add(rep_executed[rep * sched_count + s]);
      }
    }

    result.mean_lower_bound_s.push_back(lower_bound_stats.mean());
    for (std::size_t s = 0; s < config.schedulers.size(); ++s) {
      result.series[s].mean_completion_s.push_back(completion_stats[s].mean());
      result.series[s].mean_ratio_to_lb.push_back(ratio_stats[s].mean());
      result.series[s].max_ratio_to_lb.push_back(ratio_stats[s].max());
      if (config.execute)
        result.series[s].mean_executed_s.push_back(executed_stats[s].mean());
    }
  }
  if (config.metrics != nullptr) {
    for (std::size_t worker = 0; worker < workers; ++worker) {
      if (config.execute) {
        // Workspace high-water marks (capacities, so reading them is free).
        const SimWorkspace::Footprint f = worker_workspace[worker].footprint();
        MetricsRegistry& metrics = worker_metrics[worker];
        metrics.gauge("sim.workspace.event_heap_entries")
            .set_max(static_cast<double>(f.event_heap_entries));
        metrics.gauge("sim.workspace.port_heap_entries")
            .set_max(static_cast<double>(f.port_heap_entries));
        metrics.gauge("sim.workspace.port_array_entries")
            .set_max(static_cast<double>(f.port_array_entries));
      }
      config.metrics->merge(worker_metrics[worker]);
    }
  }
  return result;
}

namespace {

Table make_table(const ExperimentResult& result, bool ratios) {
  std::vector<std::string> headers = {"P"};
  if (!ratios) headers.push_back("lower-bound");
  for (const SchedulerSeries& series : result.series)
    headers.emplace_back(scheduler_name(series.kind));
  Table table{std::move(headers)};

  for (std::size_t p = 0; p < result.config.processor_counts.size(); ++p) {
    std::vector<std::string> row = {
        std::to_string(result.config.processor_counts[p])};
    if (!ratios) row.push_back(format_double(result.mean_lower_bound_s[p], 3));
    for (const SchedulerSeries& series : result.series)
      row.push_back(format_double(
          ratios ? series.mean_ratio_to_lb[p] : series.mean_completion_s[p], 3));
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace

Table completion_table(const ExperimentResult& result) {
  return make_table(result, /*ratios=*/false);
}

Table ratio_table(const ExperimentResult& result) {
  return make_table(result, /*ratios=*/true);
}

}  // namespace hcs
