#include "experiment/experiment.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>

#include "experiment/sweep_units.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace hcs {

ExperimentResult run_experiment(const ExperimentConfig& config) {
  validate_experiment_config(config);

  // The (P, repetition) grid, flattened into one global unit index space
  // (experiment/sweep_units.hpp). Every unit writes only its own value
  // slots, and assemble_experiment_result folds the slots serially in
  // unit order — so the result is byte-identical to a serial run at any
  // thread count, and identical to a distributed run that computed the
  // same units elsewhere. Flattening also keeps all workers busy through
  // each P-point's tail instead of barriering per point.
  const SweepUnitSpace space = SweepUnitSpace::of(config);
  const std::size_t total = space.total_units();
  const std::size_t vpu = space.values_per_unit();
  std::vector<double> values(total * vpu);

  const std::size_t workers = ThreadPool::resolve_size(config.threads, total);
  ThreadPool pool{workers};

  // One warm runner per worker, reused across the whole sweep: after
  // warm-up a unit's execution pass allocates nothing in the simulator.
  // Per-worker metric registries are merged in worker order at the end.
  std::vector<MetricsRegistry> worker_metrics(
      config.metrics != nullptr ? workers : 0);
  std::vector<std::optional<SweepUnitRunner>> runners(workers);
  for (std::size_t w = 0; w < workers; ++w)
    runners[w].emplace(config,
                       config.metrics != nullptr ? &worker_metrics[w] : nullptr);

  pool.run(total, [&](std::size_t worker, std::size_t unit) {
    runners[worker]->run(unit, std::span(values).subspan(unit * vpu, vpu));
  });

  if (config.metrics != nullptr) {
    for (std::size_t worker = 0; worker < workers; ++worker) {
      if (config.execute) {
        // Workspace high-water marks (capacities, so reading them is free).
        const SimWorkspace::Footprint f =
            runners[worker]->workspace().footprint();
        MetricsRegistry& metrics = worker_metrics[worker];
        metrics.gauge("sim.workspace.event_heap_entries")
            .set_max(static_cast<double>(f.event_heap_entries));
        metrics.gauge("sim.workspace.port_heap_entries")
            .set_max(static_cast<double>(f.port_heap_entries));
        metrics.gauge("sim.workspace.port_array_entries")
            .set_max(static_cast<double>(f.port_array_entries));
      }
      config.metrics->merge(worker_metrics[worker]);
    }
  }
  return assemble_experiment_result(config, values);
}

namespace {

Table make_table(const ExperimentResult& result, bool ratios) {
  std::vector<std::string> headers = {"P"};
  if (!ratios) headers.push_back("lower-bound");
  for (const SchedulerSeries& series : result.series)
    headers.emplace_back(scheduler_name(series.kind));
  Table table{std::move(headers)};

  for (std::size_t p = 0; p < result.config.processor_counts.size(); ++p) {
    std::vector<std::string> row = {
        std::to_string(result.config.processor_counts[p])};
    if (!ratios) row.push_back(format_double(result.mean_lower_bound_s[p], 3));
    for (const SchedulerSeries& series : result.series)
      row.push_back(format_double(
          ratios ? series.mean_ratio_to_lb[p] : series.mean_completion_s[p], 3));
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace

Table completion_table(const ExperimentResult& result) {
  return make_table(result, /*ratios=*/false);
}

Table ratio_table(const ExperimentResult& result) {
  return make_table(result, /*ratios=*/true);
}

}  // namespace hcs
