// Sweep result renderers.
//
// The CSV/JSON/table emitters for figure sweeps and fault sweeps live
// here — out of the CLI — because the distributed sweep contract is
// stated on these bytes: a distributed run must render byte-identically
// to a single-process run, so the tests and the CI smoke lane diff the
// output of exactly these functions.
#pragma once

#include <ostream>

#include "experiment/experiment.hpp"
#include "experiment/fault_sweep.hpp"
#include "util/table.hpp"

namespace hcs {

/// Emits the sweep as CSV: one row per processor count, one column per
/// algorithm series (mean completion seconds or ratio-to-lower-bound),
/// plus simulated completions when the sweep executed.
void write_sweep_csv(std::ostream& out, const ExperimentResult& result,
                     bool ratios);

/// Emits the sweep as a JSON object: the generating configuration plus
/// one series object per algorithm with the full per-P statistics.
void write_sweep_json(std::ostream& out, const ExperimentResult& result);

/// Emits the fault sweep as CSV, one row per crash severity.
void write_fault_sweep_csv(std::ostream& out, const FaultSweepResult& result);

/// Emits the fault sweep as a JSON object (config header + row array).
void write_fault_sweep_json(std::ostream& out, const FaultSweepResult& result);

/// Renders the fault sweep's severity rows as a table.
[[nodiscard]] Table fault_sweep_table(const FaultSweepResult& result);

}  // namespace hcs
