// Figure-reproduction harness.
//
// Each of the paper's Figures 9–12 plots mean total-exchange completion
// time against processor count for five scheduling algorithms on randomly
// generated GUSTO-guided networks. This harness runs those sweeps:
// generate instances, schedule with every algorithm, validate each
// schedule against the model invariants, and report per-algorithm means —
// both absolute seconds and the ratio to the lower bound t_lb, which is
// the scale-free quantity the paper's §5 claims are stated in.
#pragma once

#include <cstdint>
#include <vector>

#include "core/scheduler.hpp"
#include "netmodel/cluster_detect.hpp"
#include "sim/simulator.hpp"
#include "trace/metrics.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

namespace hcs {

/// One figure sweep: which scenario, which processor counts, how many
/// random repetitions per point, and which algorithms to compare.
struct ExperimentConfig {
  Scenario scenario = Scenario::kMixedMessages;
  std::vector<std::size_t> processor_counts = {5, 10, 15, 20, 25, 30, 35, 40, 45, 50};
  std::size_t repetitions = 10;
  std::uint64_t base_seed = 42;
  std::vector<SchedulerKind> schedulers = paper_schedulers();
  /// Validate every schedule against the model invariants (cheap; on by
  /// default so a scheduling bug can never produce a figure silently).
  bool validate = true;
  /// Worker threads for the repetition loop; 0 means one per hardware
  /// thread. The result is byte-identical at every setting: repetition
  /// seeds depend only on (P, repetition), every repetition writes its
  /// own result slot, and slots are folded into the statistics serially
  /// in repetition order afterwards.
  std::size_t threads = 0;
  /// Also *execute* every schedule through the network simulator (on a
  /// static directory of the instance's network) and report the mean
  /// simulated completion time per series. Each worker thread keeps its
  /// own warm SimWorkspace, so the execution pass allocates nothing in
  /// the simulator after the first repetition at each processor count.
  bool execute = false;
  /// Simulator options for the execution pass (receive model, alpha,
  /// buffer capacity, ...). The initial availability vectors must stay
  /// empty — they are per-processor-count and owned by the sweep.
  SimOptions execution;
  /// Instances come from the clustered site/WAN network family with this
  /// many sites when > 0, from the flat GUSTO family when 0.
  std::size_t cluster_count = 0;
  /// Schedule hierarchically: detect logical clusters on every instance's
  /// network and run each configured scheduler as the inner algorithm of
  /// a HierarchicalScheduler (intra-cluster + representative quotient +
  /// splice). On a flat detection the hierarchical path degenerates to
  /// the inner scheduler, so this is safe on any family.
  bool hierarchical = false;
  /// Detection tuning used when `hierarchical` is set.
  ClusterOptions cluster_options;
  /// Optional observability sink (borrowed; may be null). When set, the
  /// sweep accumulates counters (instances, schedules, simulated events,
  /// failed attempts), completion/ratio/wait histograms, and workspace
  /// high-water-mark gauges into it. Workers record into per-thread
  /// registries merged in worker order; with the pool's strided
  /// scheduling the totals are deterministic for a fixed thread count
  /// and the hot loops stay uncontended.
  MetricsRegistry* metrics = nullptr;
};

/// Per-algorithm series over the processor-count axis.
struct SchedulerSeries {
  SchedulerKind kind;
  std::vector<double> mean_completion_s;  ///< one entry per processor count
  std::vector<double> mean_ratio_to_lb;   ///< completion / t_lb, averaged
  std::vector<double> max_ratio_to_lb;    ///< worst ratio seen at that P
  /// Mean *simulated* completion time per processor count; filled only
  /// when ExperimentConfig::execute is set (empty otherwise).
  std::vector<double> mean_executed_s;
};

/// Result of one sweep.
struct ExperimentResult {
  ExperimentConfig config;
  std::vector<double> mean_lower_bound_s;  ///< one entry per processor count
  std::vector<SchedulerSeries> series;     ///< one entry per scheduler
};

/// Runs the sweep. Deterministic in the config (instance r at processor
/// count P uses seed base_seed hashed with (P, r)).
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// Renders the result as a table of absolute mean completion times
/// (seconds), one row per processor count — the paper's figure series.
[[nodiscard]] Table completion_table(const ExperimentResult& result);

/// Renders mean completion-time-to-lower-bound ratios instead.
[[nodiscard]] Table ratio_table(const ExperimentResult& result);

}  // namespace hcs
