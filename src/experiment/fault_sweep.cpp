#include "experiment/fault_sweep.hpp"

#include <memory>

#include "core/hierarchical_scheduler.hpp"
#include "netmodel/cluster_detect.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hcs {
namespace {

/// The plain algorithm, or — when hierarchical — that algorithm running
/// inside the hierarchical scheduler over the network's detected
/// clustering.
std::unique_ptr<Scheduler> make_row_scheduler(const FaultSweepConfig& config,
                                              const NetworkModel& network) {
  if (!config.hierarchical) return make_scheduler(config.kind, config.seed);
  HierarchicalScheduler::Options options;
  options.inner = config.kind;
  options.seed = config.seed;
  return std::make_unique<HierarchicalScheduler>(detect_clusters(network),
                                                 options);
}

}  // namespace

void validate_fault_sweep_config(const FaultSweepConfig& config) {
  if (config.processors < 3)
    throw InputError(
        "fault-sweep: --processors must be >= 3 (relays need an "
        "intermediate)");
  if (config.max_crashes > config.processors - 2)
    throw InputError("fault-sweep: --max-crashes must be in [0, processors - 2]");
  if (!(config.loss >= 0.0) || !(config.loss < 1.0))
    throw InputError("fault-sweep: --loss must be in [0, 1)");
  if (config.restart_count + config.max_crashes > config.processors - 2)
    throw InputError(
        "fault-sweep: --restarts must be >= 0 and leave two healthy nodes");
  if (!(config.brownout_factor > 0.0) || !(config.brownout_factor <= 1.0))
    throw InputError("fault-sweep: --brownout-factor must be in (0, 1]");
}

void add_dynamic_faults(FaultPlan& plan, std::size_t n, std::uint64_t seed,
                        double horizon_s, long restart_count, long flap_count,
                        long brownout_count, double brownout_factor) {
  for (long k = 0; k < restart_count; ++k) {
    const double at = (0.05 + 0.1 * static_cast<double>(k)) * horizon_s;
    plan.restarts.push_back(
        {static_cast<std::size_t>(k), at, at + 0.35 * horizon_s});
  }
  Rng rng{seed ^ 0xD15EA5EDULL};
  for (long k = 0; k < flap_count; ++k) {
    const auto a = static_cast<std::size_t>(rng.next_below(n));
    const auto b = static_cast<std::size_t>(rng.next_below(n));
    if (a == b) {
      --k;
      continue;
    }
    plan.flapping.push_back(
        {a, b, 0.0, horizon_s, std::max(horizon_s / 8.0, 1e-9), 0.3, true});
  }
  for (long k = 0; k < brownout_count; ++k) {
    const auto a = static_cast<std::size_t>(rng.next_below(n));
    const auto b = static_cast<std::size_t>(rng.next_below(n));
    if (a == b) {
      --k;
      continue;
    }
    plan.brownouts.push_back(
        {a, b, 0.0, 0.6 * horizon_s, brownout_factor, true});
  }
}

ResilientOptions::ReplanOptions default_replan_policy(double horizon_s) {
  ResilientOptions::ReplanOptions replan;
  replan.enabled = true;
  replan.max_replans = 4;
  replan.backoff_base_s = 0.1 * horizon_s;
  replan.backoff_factor = 2.0;
  return replan;
}

FaultSweepContext::FaultSweepContext(const FaultSweepConfig& config)
    : config_(&config),
      instance_(make_instance(config.scenario, config.processors, config.seed,
                              config.cluster_count)),
      directory_(instance_.network) {
  // Cut pairs are drawn once and shared by every sweep point, so rows
  // differ only in how many nodes crash.
  Rng rng{config.seed ^ 0xFA17FA17ULL};
  while (cuts_.size() < config.cut_count) {
    const auto a = static_cast<std::size_t>(rng.next_below(config.processors));
    const auto b = static_cast<std::size_t>(rng.next_below(config.processors));
    if (a == b) continue;
    cuts_.push_back({a, b, 0.0, 1e12});  // outlasts any run: a permanent cut
  }
}

double FaultSweepContext::fault_free_completion() const {
  const auto scheduler = make_row_scheduler(*config_, instance_.network);
  const ResilientResult fault_free =
      run_resilient(*scheduler, directory_, instance_.messages, {}, {});
  return fault_free.completion_time;
}

FaultSweepRow FaultSweepContext::run_row(std::size_t crashes,
                                         double baseline_s) const {
  const FaultSweepConfig& config = *config_;
  const std::size_t n = config.processors;
  FaultPlan plan;
  plan.cuts = cuts_;
  plan.transient_loss_prob = config.loss;
  plan.seed = config.seed;
  add_dynamic_faults(plan, n, config.seed, baseline_s,
                     static_cast<long>(config.restart_count),
                     static_cast<long>(config.flap_count),
                     static_cast<long>(config.brownout_count),
                     config.brownout_factor);
  // Crash the highest-numbered nodes at staggered times, so each row
  // adds one more mid-exchange failure.
  for (std::size_t k = 0; k < crashes; ++k)
    plan.crashes.push_back(
        {n - 1 - k, 0.25 * baseline_s * static_cast<double>(k + 1)});
  const auto scheduler = make_row_scheduler(config, instance_.network);
  ResilientOptions options;
  if (config.replan) options.replan = default_replan_policy(baseline_s);
  const ResilientResult result = run_resilient(*scheduler, directory_,
                                               instance_.messages, plan,
                                               options);
  const std::size_t delivered_direct =
      result.outcomes.size() - result.relayed_count - result.undelivered_count;
  FaultSweepRow row;
  row.crashes = crashes;
  row.direct = delivered_direct - result.rescued_count;
  row.rescued = result.rescued_count;
  row.relayed = result.relayed_count;
  row.undeliverable = result.undelivered_count;
  row.replans = result.replan_count;
  row.completion_s = result.completion_time;
  return row;
}

std::string FaultSweepContext::algorithm_name() const {
  return std::string(
      make_row_scheduler(*config_, instance_.network)->name());
}

FaultSweepResult run_fault_sweep(const FaultSweepConfig& config) {
  validate_fault_sweep_config(config);
  FaultSweepContext context(config);

  FaultSweepResult result;
  result.config = config;
  result.algorithm_name = context.algorithm_name();
  result.fault_free_completion_s = context.fault_free_completion();

  // Severity rows are independent, so they run on the pool. Each row
  // builds its own scheduler: schedulers carry mutable per-instance
  // workspaces and are not safe to share across threads. Rows land in
  // per-row slots assembled in row order, so the output is identical at
  // every thread count — and identical to a distributed run that
  // computed the rows elsewhere from the same baseline.
  const std::size_t row_count = config.max_crashes + 1;
  result.rows.resize(row_count);
  ThreadPool pool{ThreadPool::resolve_size(config.threads, row_count)};
  pool.run(row_count, [&](std::size_t /*worker*/, std::size_t row) {
    result.rows[row] = context.run_row(row, result.fault_free_completion_s);
  });
  return result;
}

void fault_row_to_values(const FaultSweepRow& row, std::span<double> out) {
  out[0] = static_cast<double>(row.direct);
  out[1] = static_cast<double>(row.rescued);
  out[2] = static_cast<double>(row.relayed);
  out[3] = static_cast<double>(row.undeliverable);
  out[4] = static_cast<double>(row.replans);
  out[5] = row.completion_s;
}

FaultSweepRow fault_row_from_values(std::size_t crashes,
                                    std::span<const double> in) {
  FaultSweepRow row;
  row.crashes = crashes;
  row.direct = static_cast<std::size_t>(in[0]);
  row.rescued = static_cast<std::size_t>(in[1]);
  row.relayed = static_cast<std::size_t>(in[2]);
  row.undeliverable = static_cast<std::size_t>(in[3]);
  row.replans = static_cast<std::size_t>(in[4]);
  row.completion_s = in[5];
  return row;
}

}  // namespace hcs
