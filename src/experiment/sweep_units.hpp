// The sweep work-unit index space.
//
// A figure sweep is a grid: processor_counts × repetitions, with every
// scheduler run on each cell. This header flattens that grid into one
// global unit index space
//
//   unit u ∈ [0, points · repetitions),
//   u → (point = u / repetitions, repetition = u % repetitions)
//
// and makes three guarantees that the rest of the sweep fabric is built
// on:
//
//   1. A unit's values depend only on (config, u): the instance seed is
//      a pure hash of (base_seed, P, repetition), so any worker — a
//      local thread, another process, another host — computes exactly
//      the same doubles for unit u.
//   2. Units write disjoint slots: unit u owns values[u·V .. (u+1)·V)
//      where V = values_per_unit() (lower bound, then one completion per
//      scheduler, then one executed time per scheduler when executing).
//   3. assemble_experiment_result folds the slots serially in unit
//      order, so the ExperimentResult — and every table/CSV/JSON
//      rendering of it — is byte-identical no matter how the units were
//      partitioned, scheduled, or merged.
//
// run_experiment (experiment.cpp) is one consumer: it runs all units on
// the local ThreadPool. The distributed sweep driver
// (src/service/sweep_driver.hpp) is the other: it ships contiguous unit
// blocks to worker backends via the shard codec
// (experiment/sweep_shard.hpp) and assembles the same vector.
#pragma once

#include <cstdint>
#include <span>

#include "experiment/experiment.hpp"
#include "sim/simulator.hpp"

namespace hcs {

/// Shape of a sweep's unit index space, derived from its config.
struct SweepUnitSpace {
  std::size_t points = 0;       ///< processor_counts.size()
  std::size_t repetitions = 0;  ///< repetitions per point
  std::size_t scheduler_count = 0;
  bool execute = false;

  [[nodiscard]] static SweepUnitSpace of(const ExperimentConfig& config) {
    return {config.processor_counts.size(), config.repetitions,
            config.schedulers.size(), config.execute};
  }

  [[nodiscard]] std::size_t total_units() const {
    return points * repetitions;
  }
  /// Doubles per unit: lower bound + per-scheduler completion
  /// (+ per-scheduler executed time when executing).
  [[nodiscard]] std::size_t values_per_unit() const {
    return 1 + scheduler_count * (execute ? 2 : 1);
  }
  [[nodiscard]] std::size_t point_of(std::size_t unit) const {
    return unit / repetitions;
  }
  [[nodiscard]] std::size_t repetition_of(std::size_t unit) const {
    return unit % repetitions;
  }
};

/// Shared entry validation for every sweep path (local and distributed).
/// Throws InputError on an empty config or misused execution options.
void validate_experiment_config(const ExperimentConfig& config);

/// Stable per-(P, repetition) seed derived from the base seed — the
/// reason unit results are placement-independent.
[[nodiscard]] std::uint64_t sweep_instance_seed(std::uint64_t base,
                                                std::size_t processor_count,
                                                std::size_t repetition);

/// Runs sweep units one at a time with warm per-runner simulator scratch
/// (a worker thread or a daemon worker keeps one runner alive across a
/// whole shard, so the execution pass allocates nothing after warm-up).
class SweepUnitRunner {
 public:
  /// `config` is borrowed and must outlive the runner. `metrics` may be
  /// null; when set, per-unit counters and histograms accumulate there.
  explicit SweepUnitRunner(const ExperimentConfig& config,
                           MetricsRegistry* metrics = nullptr)
      : config_(&config), metrics_(metrics) {}

  /// Computes unit `unit` into `out` (exactly values_per_unit() doubles).
  void run(std::size_t unit, std::span<double> out);

  /// Simulator workspace high-water marks (meaningful after executing).
  [[nodiscard]] const SimWorkspace& workspace() const { return workspace_; }

 private:
  const ExperimentConfig* config_;
  MetricsRegistry* metrics_;
  SimWorkspace workspace_;
  SimResult sim_result_;
};

/// Runs units [begin, end) serially into `out`, which holds the slots
/// for exactly those units (out.size() == (end - begin) ·
/// values_per_unit()). This is the shard execution path shared by the
/// daemon sweep handler and the in-process endpoint.
void run_sweep_units(const ExperimentConfig& config, std::size_t begin,
                     std::size_t end, std::span<double> out,
                     MetricsRegistry* metrics = nullptr);

/// Folds a fully populated unit-value vector (total_units() ·
/// values_per_unit() doubles, unit-major) into the ExperimentResult.
/// Serial, in unit order — the single point where merge determinism is
/// decided, shared by the local and distributed paths.
[[nodiscard]] ExperimentResult assemble_experiment_result(
    const ExperimentConfig& config, std::span<const double> values);

}  // namespace hcs
