#include "experiment/sweep_shard.hpp"

#include <cmath>

#include "experiment/sweep_units.hpp"
#include "util/bytes.hpp"

namespace hcs {
namespace {

using Writer = ByteWriter<SweepShardError>;
using Cursor = ByteCursor<SweepShardError>;

// Sanity caps on decoded list sizes: a malformed or hostile shard must
// not make the worker allocate unboundedly. Generous relative to any
// real sweep (the widest checked-in sweep has 10 points x 7 schedulers).
constexpr std::uint32_t kMaxPoints = 4096;
constexpr std::uint32_t kMaxSchedulers = 64;
constexpr std::uint32_t kMaxResultBytes = 1u << 26;

Scenario checked_scenario(std::uint8_t raw) {
  switch (static_cast<Scenario>(raw)) {
    case Scenario::kSmallMessages:
    case Scenario::kLargeMessages:
    case Scenario::kMixedMessages:
    case Scenario::kServers:
      return static_cast<Scenario>(raw);
  }
  throw SweepShardError("sweep_shard: unknown scenario " +
                        std::to_string(raw));
}

SchedulerKind checked_scheduler(std::uint8_t raw) {
  switch (static_cast<SchedulerKind>(raw)) {
    case SchedulerKind::kBaseline:
    case SchedulerKind::kBaselineBarrier:
    case SchedulerKind::kMaxMatching:
    case SchedulerKind::kMinMatching:
    case SchedulerKind::kGreedy:
    case SchedulerKind::kOpenShop:
    case SchedulerKind::kRandom:
      return static_cast<SchedulerKind>(raw);
  }
  throw SweepShardError("sweep_shard: unknown scheduler kind " +
                        std::to_string(raw));
}

ReceiveModel checked_model(std::uint8_t raw) {
  switch (static_cast<ReceiveModel>(raw)) {
    case ReceiveModel::kSerialized:
    case ReceiveModel::kInterleaved:
    case ReceiveModel::kBuffered:
      return static_cast<ReceiveModel>(raw);
  }
  throw SweepShardError("sweep_shard: unknown receive model " +
                        std::to_string(raw));
}

ReceiverArbitration checked_arbitration(std::uint8_t raw) {
  switch (static_cast<ReceiverArbitration>(raw)) {
    case ReceiverArbitration::kProgrammed:
    case ReceiverArbitration::kFifo:
      return static_cast<ReceiverArbitration>(raw);
  }
  throw SweepShardError("sweep_shard: unknown arbitration " +
                        std::to_string(raw));
}

/// Fixed-size byte footprint of each config family on the wire.
constexpr std::size_t kFigureFixedBytes = 2 + 8 + 4 + 4 + 24 + 50 + 4 + 4;
constexpr std::size_t kFaultFixedBytes = 4 + 4 + 8 + 4 + 4 + 8 + 4 + 4 + 4 +
                                         8 + 4 + 8;

void encode_figure(Writer& writer, const ExperimentConfig& config) {
  writer.u8(static_cast<std::uint8_t>(config.scenario));
  writer.u8(static_cast<std::uint8_t>((config.validate ? 1 : 0) |
                                      (config.execute ? 2 : 0) |
                                      (config.hierarchical ? 4 : 0)));
  writer.u64(config.base_seed);
  writer.u32(static_cast<std::uint32_t>(config.repetitions));
  writer.u32(static_cast<std::uint32_t>(config.cluster_count));
  writer.f64(config.cluster_options.quantum);
  writer.f64(config.cluster_options.tolerance);
  writer.u64(config.cluster_options.ref_bytes);
  writer.u8(static_cast<std::uint8_t>(config.execution.model));
  writer.u8(static_cast<std::uint8_t>(config.execution.arbitration));
  writer.f64(config.execution.alpha);
  writer.u64(config.execution.buffer_capacity);
  writer.f64(config.execution.drain_factor);
  writer.u64(config.execution.max_attempts);
  writer.f64(config.execution.backoff_base_s);
  writer.f64(config.execution.backoff_factor);
  writer.u32(static_cast<std::uint32_t>(config.processor_counts.size()));
  writer.u32(static_cast<std::uint32_t>(config.schedulers.size()));
  for (const std::size_t p : config.processor_counts)
    writer.u32(static_cast<std::uint32_t>(p));
  for (const SchedulerKind kind : config.schedulers)
    writer.u8(static_cast<std::uint8_t>(kind));
}

ExperimentConfig decode_figure(Cursor& cursor) {
  ExperimentConfig config;
  config.scenario = checked_scenario(cursor.u8());
  const std::uint8_t flags = cursor.u8();
  if ((flags & ~std::uint8_t{7}) != 0)
    throw SweepShardError("sweep_shard: unknown figure flag bits");
  config.validate = (flags & 1) != 0;
  config.execute = (flags & 2) != 0;
  config.hierarchical = (flags & 4) != 0;
  config.base_seed = cursor.u64();
  config.repetitions = cursor.u32();
  config.cluster_count = cursor.u32();
  config.cluster_options.quantum = cursor.f64();
  config.cluster_options.tolerance = cursor.f64();
  config.cluster_options.ref_bytes = cursor.u64();
  config.execution.model = checked_model(cursor.u8());
  config.execution.arbitration = checked_arbitration(cursor.u8());
  config.execution.alpha = cursor.f64();
  config.execution.buffer_capacity = cursor.u64();
  config.execution.drain_factor = cursor.f64();
  config.execution.max_attempts = cursor.u64();
  config.execution.backoff_base_s = cursor.f64();
  config.execution.backoff_factor = cursor.f64();
  const std::uint32_t point_count = cursor.u32();
  const std::uint32_t sched_count = cursor.u32();
  if (point_count == 0 || point_count > kMaxPoints)
    throw SweepShardError("sweep_shard: point count out of range");
  if (sched_count == 0 || sched_count > kMaxSchedulers)
    throw SweepShardError("sweep_shard: scheduler count out of range");
  config.processor_counts.clear();
  config.processor_counts.reserve(point_count);
  for (std::uint32_t k = 0; k < point_count; ++k) {
    const std::uint32_t p = cursor.u32();
    if (p < 2)
      throw SweepShardError("sweep_shard: processor count must be >= 2");
    config.processor_counts.push_back(p);
  }
  config.schedulers.clear();
  config.schedulers.reserve(sched_count);
  for (std::uint32_t k = 0; k < sched_count; ++k)
    config.schedulers.push_back(checked_scheduler(cursor.u8()));
  return config;
}

void encode_fault(Writer& writer, const FaultSweepConfig& config,
                  double baseline_s) {
  writer.u8(static_cast<std::uint8_t>(config.scenario));
  writer.u8(static_cast<std::uint8_t>((config.replan ? 1 : 0) |
                                      (config.hierarchical ? 2 : 0)));
  writer.u8(static_cast<std::uint8_t>(config.kind));
  writer.u8(0);  // reserved
  writer.u32(static_cast<std::uint32_t>(config.processors));
  writer.u64(config.seed);
  writer.u32(static_cast<std::uint32_t>(config.max_crashes));
  writer.u32(static_cast<std::uint32_t>(config.cut_count));
  writer.f64(config.loss);
  writer.u32(static_cast<std::uint32_t>(config.restart_count));
  writer.u32(static_cast<std::uint32_t>(config.flap_count));
  writer.u32(static_cast<std::uint32_t>(config.brownout_count));
  writer.f64(config.brownout_factor);
  writer.u32(static_cast<std::uint32_t>(config.cluster_count));
  writer.f64(baseline_s);
}

FaultSweepConfig decode_fault(Cursor& cursor, double& baseline_s) {
  FaultSweepConfig config;
  config.scenario = checked_scenario(cursor.u8());
  const std::uint8_t flags = cursor.u8();
  if ((flags & ~std::uint8_t{3}) != 0)
    throw SweepShardError("sweep_shard: unknown fault flag bits");
  config.replan = (flags & 1) != 0;
  config.hierarchical = (flags & 2) != 0;
  config.kind = checked_scheduler(cursor.u8());
  (void)cursor.u8();  // reserved
  config.processors = cursor.u32();
  config.seed = cursor.u64();
  config.max_crashes = cursor.u32();
  config.cut_count = cursor.u32();
  config.loss = cursor.f64();
  config.restart_count = cursor.u32();
  config.flap_count = cursor.u32();
  config.brownout_count = cursor.u32();
  config.brownout_factor = cursor.f64();
  config.cluster_count = cursor.u32();
  baseline_s = cursor.f64();
  if (!std::isfinite(baseline_s) || baseline_s < 0.0)
    throw SweepShardError("sweep_shard: baseline must be finite and >= 0");
  return config;
}

}  // namespace

std::vector<std::uint8_t> encode_sweep_shard_request(
    const SweepShardRequest& request) {
  if (request.unit_begin > request.unit_end)
    throw SweepShardError("encode_sweep_shard_request: begin > end");
  std::vector<std::uint8_t> out;
  if (request.kind == SweepKind::kFigure) {
    const ExperimentConfig& config = request.figure;
    if (config.metrics != nullptr)
      throw SweepShardError(
          "encode_sweep_shard_request: metrics sinks cannot be shipped");
    if (!config.execution.initial_send_avail.empty() ||
        !config.execution.initial_recv_avail.empty())
      throw SweepShardError(
          "encode_sweep_shard_request: initial availability cannot be "
          "shipped");
    if (config.execution.fault_model != nullptr)
      throw SweepShardError(
          "encode_sweep_shard_request: fault models cannot be shipped");
    if (config.processor_counts.size() > kMaxPoints ||
        config.schedulers.size() > kMaxSchedulers)
      throw SweepShardError("encode_sweep_shard_request: config too large");
    Writer writer(out, 2 + kFigureFixedBytes +
                           4 * config.processor_counts.size() +
                           config.schedulers.size() + 8);
    writer.u8(kSweepShardVersion);
    writer.u8(static_cast<std::uint8_t>(request.kind));
    encode_figure(writer, config);
    writer.u32(request.unit_begin);
    writer.u32(request.unit_end);
    writer.finish();
  } else {
    Writer writer(out, 2 + kFaultFixedBytes + 8);
    writer.u8(kSweepShardVersion);
    writer.u8(static_cast<std::uint8_t>(request.kind));
    encode_fault(writer, request.fault, request.fault_baseline_s);
    writer.u32(request.unit_begin);
    writer.u32(request.unit_end);
    writer.finish();
  }
  return out;
}

SweepShardRequest decode_sweep_shard_request(
    std::span<const std::uint8_t> payload) {
  Cursor cursor(payload);
  const std::uint8_t version = cursor.u8();
  if (version != kSweepShardVersion)
    throw SweepShardError("decode_sweep_shard_request: unsupported version " +
                          std::to_string(version));
  SweepShardRequest request;
  const std::uint8_t raw_kind = cursor.u8();
  if (raw_kind == static_cast<std::uint8_t>(SweepKind::kFigure)) {
    request.kind = SweepKind::kFigure;
    request.figure = decode_figure(cursor);
  } else if (raw_kind == static_cast<std::uint8_t>(SweepKind::kFault)) {
    request.kind = SweepKind::kFault;
    request.fault = decode_fault(cursor, request.fault_baseline_s);
  } else {
    throw SweepShardError("decode_sweep_shard_request: unknown sweep kind " +
                          std::to_string(raw_kind));
  }
  request.unit_begin = cursor.u32();
  request.unit_end = cursor.u32();
  if (request.unit_begin > request.unit_end)
    throw SweepShardError("decode_sweep_shard_request: begin > end");
  cursor.expect_exhausted("decode_sweep_shard_request");
  return request;
}

std::vector<std::uint8_t> encode_sweep_shard_result(
    const SweepShardResult& result) {
  if (result.values.size() != static_cast<std::size_t>(result.unit_count) *
                                  result.values_per_unit)
    throw SweepShardError("encode_sweep_shard_result: value count mismatch");
  std::vector<std::uint8_t> out;
  Writer writer(out, 16 + 8 * result.values.size());
  writer.u8(kSweepShardVersion);
  writer.u8(static_cast<std::uint8_t>(result.kind));
  writer.u16(0);  // reserved
  writer.u32(result.unit_begin);
  writer.u32(result.unit_count);
  writer.u32(result.values_per_unit);
  writer.f64_block(result.values);
  writer.finish();
  return out;
}

SweepShardResult decode_sweep_shard_result(
    std::span<const std::uint8_t> payload) {
  Cursor cursor(payload);
  const std::uint8_t version = cursor.u8();
  if (version != kSweepShardVersion)
    throw SweepShardError("decode_sweep_shard_result: unsupported version " +
                          std::to_string(version));
  SweepShardResult result;
  const std::uint8_t raw_kind = cursor.u8();
  if (raw_kind != static_cast<std::uint8_t>(SweepKind::kFigure) &&
      raw_kind != static_cast<std::uint8_t>(SweepKind::kFault))
    throw SweepShardError("decode_sweep_shard_result: unknown sweep kind " +
                          std::to_string(raw_kind));
  result.kind = static_cast<SweepKind>(raw_kind);
  (void)cursor.u16();  // reserved
  result.unit_begin = cursor.u32();
  result.unit_count = cursor.u32();
  result.values_per_unit = cursor.u32();
  const std::uint64_t total = static_cast<std::uint64_t>(result.unit_count) *
                              result.values_per_unit;
  if (8 * total > kMaxResultBytes)
    throw SweepShardError("decode_sweep_shard_result: result too large");
  if (cursor.remaining() != 8 * total)
    throw SweepShardError("decode_sweep_shard_result: value block size "
                          "mismatch");
  result.values.resize(total);
  cursor.f64_block(result.values);
  cursor.expect_exhausted("decode_sweep_shard_result");
  return result;
}

std::vector<std::uint8_t> handle_sweep_shard(
    std::span<const std::uint8_t> request_bytes, std::size_t* units_out) {
  const SweepShardRequest request = decode_sweep_shard_request(request_bytes);
  SweepShardResult result;
  result.kind = request.kind;
  result.unit_begin = request.unit_begin;
  result.unit_count = request.unit_end - request.unit_begin;
  if (units_out != nullptr) *units_out = result.unit_count;

  if (request.kind == SweepKind::kFigure) {
    validate_experiment_config(request.figure);
    const SweepUnitSpace space = SweepUnitSpace::of(request.figure);
    if (request.unit_end > space.total_units())
      throw SweepShardError("handle_sweep_shard: unit range out of bounds");
    result.values_per_unit =
        static_cast<std::uint32_t>(space.values_per_unit());
    result.values.resize(static_cast<std::size_t>(result.unit_count) *
                         result.values_per_unit);
    run_sweep_units(request.figure, request.unit_begin, request.unit_end,
                    result.values);
  } else {
    validate_fault_sweep_config(request.fault);
    if (request.unit_end > request.fault.max_crashes + 1)
      throw SweepShardError("handle_sweep_shard: unit range out of bounds");
    result.values_per_unit = kFaultRowValues;
    result.values.resize(static_cast<std::size_t>(result.unit_count) *
                         kFaultRowValues);
    const FaultSweepContext context(request.fault);
    for (std::uint32_t unit = request.unit_begin; unit < request.unit_end;
         ++unit) {
      const FaultSweepRow row =
          context.run_row(unit, request.fault_baseline_s);
      fault_row_to_values(
          row, std::span(result.values)
                   .subspan((unit - request.unit_begin) * kFaultRowValues,
                            kFaultRowValues));
    }
  }
  return encode_sweep_shard_result(result);
}

}  // namespace hcs
