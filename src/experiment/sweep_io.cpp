#include "experiment/sweep_io.hpp"

#include <string>
#include <vector>

namespace hcs {

void write_sweep_csv(std::ostream& out, const ExperimentResult& result,
                     bool ratios) {
  out << "P,lower_bound_s";
  for (const SchedulerSeries& series : result.series)
    out << ',' << scheduler_name(series.kind);
  if (result.config.execute)
    for (const SchedulerSeries& series : result.series)
      out << ',' << scheduler_name(series.kind) << "_executed";
  out << '\n';
  for (std::size_t p = 0; p < result.config.processor_counts.size(); ++p) {
    out << result.config.processor_counts[p] << ','
        << format_double(result.mean_lower_bound_s[p], 6);
    for (const SchedulerSeries& series : result.series)
      out << ','
          << format_double(ratios ? series.mean_ratio_to_lb[p]
                                  : series.mean_completion_s[p],
                           6);
    if (result.config.execute)
      for (const SchedulerSeries& series : result.series)
        out << ',' << format_double(series.mean_executed_s[p], 6);
    out << '\n';
  }
}

void write_sweep_json(std::ostream& out, const ExperimentResult& result) {
  const auto write_doubles = [&out](const std::vector<double>& values) {
    out << '[';
    for (std::size_t k = 0; k < values.size(); ++k)
      out << (k > 0 ? "," : "") << format_double(values[k], 6);
    out << ']';
  };
  const ExperimentConfig& config = result.config;
  out << "{\"scenario\":\"" << scenario_name(config.scenario) << "\""
      << ",\"repetitions\":" << config.repetitions
      << ",\"seed\":" << config.base_seed
      << ",\"clusters\":" << config.cluster_count << ",\"hierarchical\":"
      << (config.hierarchical ? "true" : "false") << ",\"processors\":[";
  for (std::size_t p = 0; p < config.processor_counts.size(); ++p)
    out << (p > 0 ? "," : "") << config.processor_counts[p];
  out << "],\"lower_bound_s\":";
  write_doubles(result.mean_lower_bound_s);
  out << ",\"series\":[";
  for (std::size_t s = 0; s < result.series.size(); ++s) {
    const SchedulerSeries& series = result.series[s];
    out << (s > 0 ? "," : "") << "{\"algorithm\":\""
        << scheduler_name(series.kind) << "\",\"mean_completion_s\":";
    write_doubles(series.mean_completion_s);
    out << ",\"mean_ratio_to_lb\":";
    write_doubles(series.mean_ratio_to_lb);
    out << ",\"max_ratio_to_lb\":";
    write_doubles(series.max_ratio_to_lb);
    if (config.execute) {
      out << ",\"mean_executed_s\":";
      write_doubles(series.mean_executed_s);
    }
    out << '}';
  }
  out << "]}\n";
}

namespace {

double x_fault_free(const FaultSweepResult& result, const FaultSweepRow& row) {
  return result.fault_free_completion_s > 0
             ? row.completion_s / result.fault_free_completion_s
             : 1.0;
}

}  // namespace

void write_fault_sweep_csv(std::ostream& out, const FaultSweepResult& result) {
  out << "crashes,direct,rescued,relayed,undeliverable,replans,"
         "completion_s,x_fault_free\n";
  for (const FaultSweepRow& row : result.rows)
    out << row.crashes << ',' << row.direct << ',' << row.rescued << ','
        << row.relayed << ',' << row.undeliverable << ',' << row.replans
        << ',' << format_double(row.completion_s, 6) << ','
        << format_double(x_fault_free(result, row), 6) << '\n';
}

void write_fault_sweep_json(std::ostream& out, const FaultSweepResult& result) {
  const FaultSweepConfig& config = result.config;
  out << "{\"scenario\":\"" << scenario_name(config.scenario)
      << "\",\"processors\":" << config.processors
      << ",\"seed\":" << config.seed << ",\"algorithm\":\""
      << result.algorithm_name
      << "\",\"replan\":" << (config.replan ? "true" : "false")
      << ",\"fault_free_completion_s\":"
      << format_double(result.fault_free_completion_s, 6) << ",\"rows\":[";
  for (std::size_t k = 0; k < result.rows.size(); ++k) {
    const FaultSweepRow& row = result.rows[k];
    out << (k > 0 ? "," : "") << "{\"crashes\":" << row.crashes
        << ",\"direct\":" << row.direct << ",\"rescued\":" << row.rescued
        << ",\"relayed\":" << row.relayed << ",\"undeliverable\":"
        << row.undeliverable << ",\"replans\":" << row.replans
        << ",\"completion_s\":" << format_double(row.completion_s, 6)
        << ",\"x_fault_free\":" << format_double(x_fault_free(result, row), 6)
        << '}';
  }
  out << "]}\n";
}

Table fault_sweep_table(const FaultSweepResult& result) {
  Table table{{"crashes", "direct", "rescued", "relayed", "undeliverable",
               "replans", "completion (s)", "x fault-free"}};
  for (const FaultSweepRow& row : result.rows)
    table.add_row({std::to_string(row.crashes), std::to_string(row.direct),
                   std::to_string(row.rescued), std::to_string(row.relayed),
                   std::to_string(row.undeliverable),
                   std::to_string(row.replans),
                   format_double(row.completion_s, 4),
                   format_double(x_fault_free(result, row), 3)});
  return table;
}

}  // namespace hcs
