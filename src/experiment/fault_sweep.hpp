// Fault-severity sweep harness.
//
// Sweeps crash-stop severity 0..max_crashes on one random instance under
// a fixed static-fault background (cut pairs, transient loss) plus
// recoverable dynamic faults (crash-restart windows, flapping links,
// brownouts), executing every severity row with the fault-tolerant
// executor. Extracted from the `hcs fault-sweep` command so the rows can
// also be computed remotely: like the figure sweep
// (experiment/sweep_units.hpp), a row's values depend only on (config,
// row index, baseline), so any worker computes the same doubles and the
// merged result is byte-identical to a single-process run.
//
// The row index space is the crash count: unit u ∈ [0, max_crashes]
// computes the row with u crashed nodes. The fault-free baseline is
// computed once (fault_sweep_baseline) and passed to every row — it
// fixes the dynamic-fault horizon and the crash stagger, so it must be
// identical across workers; the distributed driver ships it in the shard
// spec.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "fault/fault_plan.hpp"
#include "fault/resilient.hpp"
#include "netmodel/directory.hpp"
#include "workload/scenario.hpp"

namespace hcs {

/// One fault-severity sweep: the instance, the scheduler, the fault
/// background, and how many severity rows.
struct FaultSweepConfig {
  Scenario scenario = Scenario::kMixedMessages;
  std::size_t processors = 16;
  std::uint64_t seed = 1;
  SchedulerKind kind = SchedulerKind::kOpenShop;
  std::size_t max_crashes = 2;   ///< rows 0..max_crashes inclusive
  std::size_t cut_count = 1;     ///< permanently cut pairs, shared by rows
  double loss = 0.0;             ///< per-attempt transient loss probability
  std::size_t restart_count = 0; ///< crash-restart windows
  std::size_t flap_count = 0;    ///< periodically flapping links
  std::size_t brownout_count = 0;
  double brownout_factor = 0.25; ///< brownout bandwidth fraction
  bool replan = false;           ///< online re-planning on
  bool hierarchical = false;
  std::size_t cluster_count = 0; ///< clustered instance family when > 0
  std::size_t threads = 0;       ///< local row workers (0 = per-CPU)
};

/// One severity row: the delivery mix and completion at `crashes`
/// crash-stopped nodes. (The overhead ratio is completion_s divided by
/// the sweep's fault-free baseline; renderers compute it.)
struct FaultSweepRow {
  std::size_t crashes = 0;
  std::size_t direct = 0;
  std::size_t rescued = 0;
  std::size_t relayed = 0;
  std::size_t undeliverable = 0;
  std::size_t replans = 0;
  double completion_s = 0.0;
};

struct FaultSweepResult {
  FaultSweepConfig config;
  std::string algorithm_name;        ///< display name incl. hierarchical wrap
  double fault_free_completion_s = 0.0;
  std::vector<FaultSweepRow> rows;   ///< rows 0..max_crashes in order
};

/// Throws InputError on out-of-contract values (too few processors for
/// relays, crash/restart budget exceeding the healthy-node floor, loss
/// or brownout factor out of range). Shared by the CLI and the shard
/// decoder.
void validate_fault_sweep_config(const FaultSweepConfig& config);

/// Dynamic (recoverable) faults shared by fault-sweep and `hcs trace`,
/// scaled to the run's expected makespan: crash-restart windows on the
/// lowest-numbered nodes, periodically flapping links, and bandwidth
/// brownouts on random pairs. Deterministic in (seed, horizon).
void add_dynamic_faults(FaultPlan& plan, std::size_t n, std::uint64_t seed,
                        double horizon_s, long restart_count, long flap_count,
                        long brownout_count, double brownout_factor);

/// Replan policy turned on with --replan: budgeted degraded-mode
/// rescheduling whose backoff concedes enough wall-clock for mid-horizon
/// recovery windows to pass.
[[nodiscard]] ResilientOptions::ReplanOptions default_replan_policy(
    double horizon_s);

/// Warm per-worker context: the instance, directory, and shared cut
/// pairs, built once and reused across rows. Rows are computed by value
/// and are safe to run from multiple threads on one context (each row
/// builds its own scheduler; the directory is immutable).
class FaultSweepContext {
 public:
  explicit FaultSweepContext(const FaultSweepConfig& config);

  /// The fault-free completion time (row horizon and overhead baseline).
  [[nodiscard]] double fault_free_completion() const;

  /// Computes the severity row with `crashes` crash-stopped nodes.
  [[nodiscard]] FaultSweepRow run_row(std::size_t crashes,
                                      double baseline_s) const;

  /// Display name of the configured scheduler.
  [[nodiscard]] std::string algorithm_name() const;

 private:
  const FaultSweepConfig* config_;
  ProblemInstance instance_;
  StaticDirectory directory_;
  std::vector<LinkCut> cuts_;
};

/// Runs the whole sweep on the local ThreadPool. Deterministic at any
/// thread count: rows land in per-row slots assembled in row order.
[[nodiscard]] FaultSweepResult run_fault_sweep(const FaultSweepConfig& config);

/// Row <-> doubles conversion for the shard codec. Counts are carried as
/// doubles (exact: they are far below 2^53).
inline constexpr std::size_t kFaultRowValues = 6;
void fault_row_to_values(const FaultSweepRow& row, std::span<double> out);
[[nodiscard]] FaultSweepRow fault_row_from_values(std::size_t crashes,
                                                  std::span<const double> in);

}  // namespace hcs
